"""Pluggable execution backends for :class:`LocalizationSession`.

A backend owns the *drain path*: observations go in (one at a time or as
a whole dataset), verdict events come out, and ``drain()`` produces the
final :class:`~repro.core.pipeline.PipelineResult`.  Two implementations:

- :class:`InlineBackend` — the current single-threaded paths: the batch
  :class:`~repro.core.pipeline.LocalizationPipeline` for one-shot dataset
  runs, one :class:`~repro.stream.engine.StreamingLocalizer` for
  everything incremental.
- :class:`ShardedBackend` — open windows partitioned across worker
  processes by the existing bucket key.  All granularities of one
  (URL, anomaly) pair share every bucket-key prefix, so that pair *is*
  the shard key: each observation routes to exactly one worker, every
  worker holds complete ledgers for the problems it owns, and the merged
  drain is byte-identical to the inline one.  The parent converts
  measurements itself (one conversion, one discard tally), tracks the
  global bucket-creation order (which fixes the merged solution order the
  reduction statistics depend on), and re-sequences the workers' verdict
  events into one subscriber stream.

Both backends checkpoint: ``state()`` exports one backend-agnostic
engine-state dict (:mod:`repro.stream.checkpoint` format), ``restore()``
rebuilds from it — so a campaign checkpointed under one backend can
resume under the other, or under a different shard count.

Worker plumbing: each shard is one worker process behind a
:class:`~repro.api.transport.ShardTransport` — a duplex pipe to a forked
local process, or a TCP socket to a worker on any host (started via
``repro-runner shard-worker --connect``).  Frames use the compact
batched wire protocol (:mod:`repro.api.wire`): tuple-encoded observation
chunks and verdict-event batches, one frame per chunk, which is what
makes the shard boundary cheap enough for sharding to win well before
paper scale.  A daemon receiver thread per worker drains the transport
into a queue so neither side ever blocks the other into a deadlock (the
parent's sends can only stall while a worker is mid-ingest, and workers
always return to ``recv`` because their sends are always drained).

Dead shards recover instead of failing the stream: the parent keeps each
worker's last engine-state slice (its *baseline*: the initial restore
slice, a periodic snapshot, or a session checkpoint) plus the encoded
frames sent since, respawns/reconnects the worker, restores the
baseline, replays the log, and deduplicates the re-emitted verdict
events by the shard-local sequence already delivered — so subscribers
see each event exactly once and the drain stays byte-identical.
"""

from __future__ import annotations

import abc
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.observations import (
    DiscardStats,
    Observation,
    build_observations,
    first_path_only,
    observations_of,
)
from repro.core.pipeline import (
    LocalizationPipeline,
    PipelineResult,
    assemble_result,
    observation_from_dict,
    problem_key_from_dict,
)
from repro.core.problem import SolveStats
from repro.core.splitting import ProblemKey, window_start
from repro.iclab.dataset import Dataset
from repro.iclab.measurement import Measurement
from repro.obs import log as obslog
from repro.obs import recorder as obsrecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanRecorder, TRACK_WORKER, shard_track
from repro.obs.trace import TraceContext, Tracer
from repro.stream.checkpoint import (
    STATE_FORMAT,
    adopt_slice,
    confirmed_from_problems,
    discard_from_dict,
    discard_to_dict,
    engine_state,
    extract_slice,
    identification_from_dict,
    identification_to_dict,
    restore_engine,
    split_state,
    state_slice,
)
from repro.stream.engine import (
    LATE_ERROR,
    StreamingLocalizer,
    StreamOrderError,
)
from repro.stream.events import Subscriber, VerdictEvent
from repro.stream.state import StreamStats
from repro.util.profiling import StageTimer, maybe_stage
from repro.util.timeutil import TimeWindow

from repro.api import wire
from repro.api.config import TRANSPORT_SOCKET, SessionConfig
from repro.api.placement import PartitionMap, shard_of  # noqa: F401  (re-export)
from repro.api.transport import (
    _CODEC_BUCKETS,
    PipeTransport,
    ShardListener,
    ShardTransport,
    TransportError,
    connect_worker,
)

# Un-consumed worker replies the parent allows per shard before blocking;
# bounds parent-side queue memory without serializing the pipeline.
MAX_OUTSTANDING = 8

_log = obslog.get_logger("api.backends")
_worker_log = obslog.get_logger("api.worker")

# Consecutive respawn failures before recovery gives up on a shard.
RECOVERY_ATTEMPTS = 3


class BackendError(RuntimeError):
    """A worker process failed, or died beyond recovery."""


@dataclass
class BackendContext:
    """Everything a backend needs from its session, in one place."""

    config: SessionConfig
    ip2as: Any                      # IpToAsDatabase; None for replay-only
    country_by_asn: Dict[int, str]
    subscribers: List[Subscriber] = field(default_factory=list)
    # Optional observability plane (session.enable_metrics() /
    # enable_tracing() / enable_flight_recorder()); bound at backend
    # creation like subscribers.  Telemetry only — never consulted by
    # any result-producing path.
    metrics: Optional[MetricsRegistry] = None
    spans: Optional[SpanRecorder] = None
    flight: Optional[FlightRecorder] = None
    flight_dir: Optional[str] = None


class ExecutionBackend(abc.ABC):
    """The drain path contract every backend implements."""

    def __init__(self, context: BackendContext) -> None:
        self.context = context

    # -- incremental surface ---------------------------------------------

    @abc.abstractmethod
    def ingest_measurement(self, measurement: Measurement) -> None:
        """Convert one measurement and ingest its observations."""

    @abc.abstractmethod
    def ingest_observation(self, observation: Observation) -> None:
        """Ingest one pre-converted observation."""

    @abc.abstractmethod
    def advance(self, timestamp: int) -> None:
        """Push the stream watermark forward without an observation."""

    @abc.abstractmethod
    def merge_discard_stats(self, stats: DiscardStats) -> None:
        """Fold in conversion tallies made outside the backend."""

    @abc.abstractmethod
    def drain(self) -> PipelineResult:
        """Close every window and assemble the final result."""

    # -- one-shot dataset workload ---------------------------------------

    @abc.abstractmethod
    def run_dataset(
        self,
        dataset: Dataset,
        without_churn: bool = False,
        timer: Optional[StageTimer] = None,
    ) -> PipelineResult:
        """Localize a complete dataset (the batch workload)."""

    # -- checkpointing ----------------------------------------------------

    @abc.abstractmethod
    def state(self) -> Dict[str, Any]:
        """The resumable engine state (:mod:`repro.stream.checkpoint`)."""

    @abc.abstractmethod
    def restore(self, state: Dict[str, Any]) -> None:
        """Rebuild from :meth:`state` output; call before any ingestion."""

    # -- lifecycle / reporting --------------------------------------------

    def close(self) -> None:
        """Release worker processes (no-op for in-process backends)."""

    @property
    @abc.abstractmethod
    def stats(self) -> StreamStats:
        """Stream counters (merged across shards where applicable)."""

    @property
    @abc.abstractmethod
    def identifications(self) -> List:
        """Confirmed-censor log for the time-to-localization report."""


class InlineBackend(ExecutionBackend):
    """The current single-threaded paths, behind the backend contract."""

    def __init__(self, context: BackendContext) -> None:
        super().__init__(context)
        config = context.config
        self.engine = StreamingLocalizer(
            ip2as=context.ip2as,
            country_by_asn=context.country_by_asn,
            config=config.pipeline_config(),
            late_policy=config.execution.late_policy,
            metrics=context.metrics,
        )
        if context.spans is not None:
            self.engine.attach_spans(context.spans)
        if context.subscribers:
            self.engine.subscribe(self._dispatch)

    def _dispatch(self, event: VerdictEvent) -> None:
        for subscriber in self.context.subscribers:
            subscriber(event)

    def ingest_measurement(self, measurement: Measurement) -> None:
        self.engine.ingest_measurement(measurement)

    def ingest_observation(self, observation: Observation) -> None:
        self.engine.ingest_observation(observation)

    def advance(self, timestamp: int) -> None:
        self.engine.advance(timestamp)

    def merge_discard_stats(self, stats: DiscardStats) -> None:
        self.engine.merge_discard_stats(stats)

    def drain(self) -> PipelineResult:
        return self.engine.drain()

    def run_dataset(
        self,
        dataset: Dataset,
        without_churn: bool = False,
        timer: Optional[StageTimer] = None,
    ) -> PipelineResult:
        """One-shot batch over the reference single-threaded paths.

        With no subscribers this is the plain ``LocalizationPipeline``
        fast path (no per-observation verdict work).  With subscribers
        the same observations replay through the engine instead — byte-
        identical drain, but verdict events fire and the stream counters
        populate, matching what the sharded backend's ``run_dataset``
        observably does.
        """
        if (
            self.engine.open_problems
            or self.engine.closed_problems
            or self.engine.stats.measurements
            or self.engine.stats.observations
        ):
            raise RuntimeError(
                "run_dataset() needs a fresh backend; this one already "
                "holds ingested or restored state — keep using the "
                "incremental surface and drain()"
            )
        if self.context.subscribers:
            with maybe_stage(timer, "pipeline.observations"):
                observations, stats = build_observations(
                    dataset,
                    self.context.ip2as,
                    anomalies=self.context.config.pipeline_config().anomalies,
                )
            self.engine.merge_discard_stats(stats)
            if without_churn:
                observations = first_path_only(observations)
            for observation in observations:
                self.engine.ingest_observation(observation)
            return self.engine.drain()
        pipeline = LocalizationPipeline(
            ip2as=self.context.ip2as,
            country_by_asn=self.context.country_by_asn,
            config=self.context.config.pipeline_config(),
            timer=timer,
        )
        if without_churn:
            return pipeline.run_without_churn(dataset)
        return pipeline.run(dataset)

    def state(self) -> Dict[str, Any]:
        return engine_state(self.engine)

    def restore(self, state: Dict[str, Any]) -> None:
        self.engine = restore_engine(
            state,
            self.context.ip2as,
            self.context.country_by_asn,
            config=self.context.config.pipeline_config(),
            late_policy=self.context.config.execution.late_policy,
        )
        if self.context.metrics is not None:
            self.engine.attach_metrics(self.context.metrics)
        if self.context.spans is not None:
            self.engine.attach_spans(self.context.spans)
        if self.context.subscribers:
            self.engine.subscribe(self._dispatch)

    @property
    def stats(self) -> StreamStats:
        return self.engine.stats

    @property
    def identifications(self) -> List:
        return self.engine.identifications

    @property
    def solve_stats(self):
        return self.engine.solve_stats


# -- sharded backend -------------------------------------------------------


def _mp_context():
    # One start-method policy for all worker pools; the rationale lives
    # with the sweep executor.  Deferred import: the executor imports
    # this package's session module lazily, never at load time, so the
    # call-time import cannot cycle.
    from repro.runner.executor import _pool_context

    return _pool_context()


def run_shard_worker(transport: ShardTransport) -> None:
    """One shard worker over any transport: an engine over this worker's
    (URL, anomaly) pairs.

    The first frame must be the parent's hello (wire-format version,
    shard index, session config, event switch); the worker acks with its
    own version so mismatched builds fail loudly instead of mis-decoding
    frames.  After that, the worker replies exactly once per request —
    the flow-control contract the parent's outstanding counters rely on.
    The engine runs without an IP-to-AS database (the parent
    pre-converts) and with an empty country map (the parent assembles
    the merged result).

    On an engine exception the worker first flushes any verdict events
    already buffered for the current chunk, then ships the full
    formatted traceback — the parent surfaces it verbatim, and the
    events that preceded the failure are not lost with it.
    """
    try:
        hello = transport.recv()
    except (EOFError, OSError):
        transport.close()
        return
    try:
        index, config_payload, want_events, options = wire.check_hello(
            hello
        )
    except wire.WireFormatError as exc:
        try:
            transport.send(("error", str(exc)))
        except OSError:
            pass
        transport.close()
        return
    config = SessionConfig.from_dict(config_payload)
    pipeline_config = config.pipeline_config()
    late_policy = config.execution.late_policy
    events: List[VerdictEvent] = []
    # Rebalance stash: slices extracted by a ``rebalance_begin`` wait
    # here (keyed by map epoch) until the parent fetches them and the
    # ``rebalance_commit`` drops them.  Worker-local and rebuilt
    # deterministically by recovery replay, since the begin frame is in
    # the parent's replay log while the read-only fetch is not.
    pending_slices: Dict[int, Dict[str, Any]] = {}
    # Observability (hello options, format 2): "metrics" stands up a
    # worker-local registry — shipped back shard-labeled in the drain
    # telemetry — and "ack" asks for an empty events reply per obs chunk
    # even with no subscribers, which is how the parent measures ingest
    # lag without turning verdict computation on.  "spans" arms a
    # worker-local span recorder (also shipped home at drain), and
    # "flight_dir" a worker-local flight recorder dumped there on an
    # unhandled engine exception.
    registry = MetricsRegistry() if options.get("metrics") else None
    want_acks = bool(options.get("ack"))
    spans = SpanRecorder() if options.get("spans") else None
    flight_dir = options.get("flight_dir")
    flight = None
    if flight_dir:
        flight = obsrecorder.install(FlightRecorder())
        transport.attach_recorder(flight, shard=index)
    obslog.bind(shard=index, role="worker")
    chunk_seconds = queue_delay = None
    if registry is not None:
        transport.attach_metrics(registry, {"role": "worker"})
        chunk_seconds = registry.histogram("repro_worker_chunk_seconds")
        queue_delay = registry.histogram(
            "repro_worker_queue_delay_seconds"
        )

    def fresh_engine() -> StreamingLocalizer:
        engine = StreamingLocalizer(
            ip2as=None,
            country_by_asn={},
            config=pipeline_config,
            late_policy=late_policy,
            metrics=registry,
        )
        if spans is not None:
            engine.attach_spans(spans, track=TRACK_WORKER)
        if want_events:
            engine.subscribe(events.append)
        return engine

    engine = fresh_engine()
    try:
        transport.send(("hello", wire.WIRE_FORMAT))
        while True:
            message = transport.recv()
            kind = message[0]
            if kind == "obs":
                context = wire.frame_trace(message)
                if registry is not None:
                    if context is not None:
                        # Both stamps are CLOCK_MONOTONIC; comparable
                        # across processes on one host, clamped to zero
                        # for remote workers whose clocks are not.
                        queue_delay.observe(
                            max(0.0, time.perf_counter() - context[1])
                        )
                    chunk_started = time.perf_counter()
                span_started = (
                    spans.clock() if spans is not None else None
                )
                ingest = engine.ingest_observation
                from_wire = wire.observation_from_wire
                for payload in message[1]:
                    ingest(from_wire(payload))
                if spans is not None:
                    spans.record(
                        "chunk.ingest",
                        start=span_started,
                        duration=spans.clock() - span_started,
                        category="worker",
                        track=TRACK_WORKER,
                        observations=len(message[1]),
                    )
                if registry is not None:
                    chunk_seconds.observe(
                        time.perf_counter() - chunk_started
                    )
                # Chunk replies exist to carry verdict events (and to
                # bound the parent's reply queue while they do).  With
                # no subscribers there is nothing to ship: obs frames
                # are fire-and-forget and the OS pipe/socket buffer is
                # the flow control — unless the parent asked for acks
                # (metrics mode), which echo the trace context so it
                # can close latency spans and advance ack watermarks.
                if want_events or want_acks:
                    reply = ("events", _take_events(events))
                    if context is not None:
                        reply = reply + (context,)
                    transport.send(reply)
            elif kind == "advance":
                engine.advance(message[1])
                transport.send(("events", _take_events(events)))
            elif kind == "state":
                transport.send(("state", engine_state(engine)))
            elif kind == "restore":
                engine = restore_engine(
                    message[1], None, {}, pipeline_config, late_policy
                )
                if registry is not None:
                    engine.attach_metrics(registry)
                if spans is not None:
                    engine.attach_spans(spans, track=TRACK_WORKER)
                if want_events:
                    engine.subscribe(events.append)
                # A restore resets the engine wholesale; stashes from the
                # old incarnation are stale (replayed begin frames, if
                # any, rebuild them from the restored state).
                pending_slices.clear()
                transport.send(("ok",))
            elif kind == "rebalance_begin":
                # Logged frame: extract the moving pairs' problems out of
                # the engine into the epoch's stash.  Pure function of
                # engine state, so a recovery replay re-extracts the
                # identical slice.
                pending_slices[message[1]] = extract_slice(
                    engine, message[2]
                )
                transport.send(("ok",))
            elif kind == "slice_fetch":
                # Read-only (never logged): ship the stashed slice.  The
                # parent resends this after a recovery, like "state".
                stash = pending_slices.get(message[1])
                if stash is None:
                    raise ValueError(
                        f"no slice stashed for epoch {message[1]}"
                    )
                transport.send(("slice", message[1], stash))
            elif kind == "slice_transfer":
                # Logged frame: adopt problems migrating to this shard.
                adopt_slice(engine, message[2])
                transport.send(("ok",))
            elif kind == "rebalance_commit":
                # Logged frame: the epoch is live everywhere; stashes at
                # or below it can never be fetched again.
                for epoch in [
                    epoch
                    for epoch in pending_slices
                    if epoch <= message[1]
                ]:
                    del pending_slices[epoch]
                transport.send(("ok",))
            elif kind == "drain":
                if spans is not None:
                    with spans.span(
                        "engine.drain",
                        category="engine",
                        track=TRACK_WORKER,
                    ):
                        engine.close_all()
                else:
                    engine.close_all()
                transport.send(
                    (
                        "drain",
                        _drain_payload(engine, events, registry, spans),
                    )
                )
            elif kind == "stop":
                break
            else:  # pragma: no cover - protocol bug guard
                raise ValueError(f"unknown message kind {kind!r}")
    except EOFError:  # parent died; nothing to report to
        pass
    except Exception:  # noqa: BLE001 - ship the failure upstream
        # Crash context must survive even if the error frame never
        # reaches a subscriber: log the full traceback through the
        # structured logger, and dump the flight recorder if armed.
        formatted = traceback.format_exc()
        _worker_log.error(
            "worker.error", extra=obslog.fields(traceback=formatted)
        )
        if flight is not None:
            flight.dump(
                flight_dir, reason=f"shard-{index}-engine-exception"
            )
        try:
            pending = _take_events(events)
            if pending:
                transport.send(("events", pending))
            transport.send(("error", formatted))
        except OSError:
            pass
    finally:
        transport.close()


def _pipe_worker_entry(conn) -> None:
    run_shard_worker(PipeTransport(conn))


def _socket_worker_entry(address: str, retry_for: float) -> None:
    run_shard_worker(connect_worker(address, retry_for))


def _take_events(events: List[VerdictEvent]) -> Tuple:
    payload = tuple(wire.event_to_wire(event) for event in events)
    events.clear()
    return payload


def _drain_payload(
    engine: StreamingLocalizer,
    events: List[VerdictEvent],
    registry: Optional[MetricsRegistry] = None,
    spans: Optional[SpanRecorder] = None,
) -> Tuple:
    """(events, problems, stats, confirmed, identifications, telemetry).

    Problems travel as raw (key, solution) object pairs: measured
    against tuple re-encoding, pickling the dataclasses directly is both
    faster and smaller here (the enum members and interned field strings
    memoize once per frame), and the parent can merge them without any
    reconstruction.

    The trailing telemetry dict (format 2) is side-band: solve-cache
    counters always, plus the worker's metrics snapshot and span log
    when the hello enabled them.  Parents on the old 5-tuple contract
    ignore it; nothing in it ever reaches the canonical
    :class:`PipelineResult`."""
    telemetry: Dict[str, Any] = {
        "solve_stats": engine.solve_stats.as_dict(),
        "metrics": registry.snapshot() if registry is not None else None,
    }
    if spans is not None:
        telemetry["spans"] = spans.snapshot()
    return (
        _take_events(events),
        tuple(
            (key, solution)
            for key, _, _, solution in engine.problem_records()
        ),
        engine.stats.as_dict(),
        {
            str(asn): count
            for asn, count in sorted(engine._confirmed.items())
        },
        [
            identification_to_dict(identification)
            for identification in engine.identifications
        ],
        telemetry,
    )


class _ShardWorker:
    """One shard's worker process/connection and its recovery ledger.

    The ledger is what makes a dead worker a non-event: ``baseline`` is
    the last engine-state slice known to be behind us (initial restore,
    periodic snapshot, or session checkpoint), ``log`` the encoded
    frames sent since, and ``delivered_seq`` the highest shard-local
    verdict-event sequence already handed to subscribers — the replay
    dedup line.
    """

    def __init__(self, backend: "ShardedBackend", index: int) -> None:
        self.index = index
        self._backend = backend
        self.transport: Optional[ShardTransport] = None
        self.process = None             # None for external socket workers
        self.queue: Optional["queue_module.Queue[Optional[Tuple]]"] = None
        self.outstanding = 0
        self.delivered_seq = 0
        self.baseline: Optional[Dict[str, Any]] = None
        self.log: List[bytes] = []
        self.chunks_since_snapshot = 0
        self.snapshot_mark: Optional[int] = None
        self.failures = 0           # consecutive recoveries without service
        self._stopped = False
        self.spawn()

    def spawn(self) -> None:
        """(Re)establish the worker: transport, receiver thread, hello."""
        self.transport, self.process = self._backend._open_transport(
            self.index
        )
        # A fresh queue per incarnation: a dead worker's receiver thread
        # still holds the old queue, so its late sentinel cannot leak
        # into the new conversation, and undelivered replies from the
        # old incarnation vanish with it (replay re-produces them).
        self.queue = queue_module.Queue()
        self.outstanding = 0
        self.snapshot_mark = None
        self._stopped = False
        threading.Thread(
            target=self._receive,
            args=(self.transport, self.queue),
            daemon=True,
        ).start()
        _log.info(
            "shard.spawn",
            extra=obslog.fields(
                shard=self.index,
                transport=self.transport.kind,
                pid=(
                    self.process.pid if self.process is not None else None
                ),
            ),
        )
        self.transport.send(self._backend._hello(self.index))
        self.outstanding += 1           # the hello ack

    @staticmethod
    def _receive(transport: ShardTransport, queue) -> None:
        # The receiver owns the blocking recv (executor pattern): worker
        # sends never back-pressure into a deadlock, and a dead worker
        # surfaces as a None sentinel instead of a hung parent.
        try:
            while True:
                queue.put(transport.recv())
        except (EOFError, OSError):
            queue.put(None)

    def exit_description(self) -> str:
        if self.process is not None:
            return f"exit code {self.process.exitcode}"
        return "connection lost"

    def discard(self) -> None:
        """Tear down the current incarnation before a respawn."""
        if self.transport is not None:
            self.transport.close()
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)

    def request_stop(self) -> None:
        """Ask the worker to exit without waiting for it.

        The drain path sends this to every shard right after collecting
        the payloads, so the workers wind down concurrently with the
        parent's merge instead of serializing behind it at close()."""
        if self._stopped:
            return
        self._stopped = True
        try:
            self.transport.send(("stop",))
        except OSError:
            pass

    def close(self, wait: bool = True) -> None:
        self.request_stop()
        if self.process is not None and wait:
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.terminate()
                self.process.join()
        self.transport.close()


class _GroupTracker:
    """The parent's mirror of the batch splitter, fed one observation at
    a time: global bucket-creation order plus per-problem observation
    lists — exactly ``split_observations``'s groups, which the merged
    drain needs for report assembly and the checkpoint needs for worker
    state reconstruction."""

    def __init__(self, granularities) -> None:
        self._granularities = list(granularities)
        self.sizes = [
            (index, granularity.seconds)
            for index, granularity in enumerate(self._granularities)
        ]
        self.order: List[Tuple] = []                  # bucket creation order
        self.keys: Dict[Tuple, ProblemKey] = {}
        self.groups: Dict[Tuple, List[Observation]] = {}
        # Hot-path index: (anomaly, url) → one {window start: group} per
        # granularity.  The group lists are shared with ``groups``, so
        # appends through either view land in both.
        self._by_pair: Dict[Tuple, List[Dict[int, List[Observation]]]] = {}

    def add(self, observation: Observation) -> None:
        # Hot path: one call per observation per stream.  One pair
        # lookup plus one int-keyed lookup per granularity — cheaper
        # than building and hashing a 4-tuple bucket key three times.
        url = observation.url
        anomaly = observation.anomaly
        timestamp = observation.timestamp
        per_granularity = self._by_pair.get((anomaly, url))
        if per_granularity is None:
            per_granularity = self._by_pair[(anomaly, url)] = [
                {} for _ in self.sizes
            ]
        for index, size in self.sizes:
            start = timestamp - timestamp % size
            windows = per_granularity[index]
            group = windows.get(start)
            if group is None:
                group = windows[start] = []
                bucket = (anomaly, url, index, start)
                self.order.append(bucket)
                self.keys[bucket] = ProblemKey(
                    url=url,
                    anomaly=anomaly,
                    granularity=self._granularities[index],
                    window=TimeWindow(start, start + size),
                )
                self.groups[bucket] = group
            group.append(observation)

    def register(self, key: ProblemKey, observations: List[Observation]):
        """Adopt one problem wholesale (checkpoint restore)."""
        index = self._granularities.index(key.granularity)
        bucket = (key.anomaly, key.url, index, key.window.start)
        self.order.append(bucket)
        self.keys[bucket] = key
        group = list(observations)
        self.groups[bucket] = group
        per_granularity = self._by_pair.setdefault(
            (key.anomaly, key.url), [{} for _ in self.sizes]
        )
        per_granularity[index][key.window.start] = group


def _key_id(key: ProblemKey) -> Tuple[str, str, str, int]:
    return (
        key.url,
        key.anomaly.value,
        key.granularity.value,
        key.window.start,
    )


# Verdict latency brackets the full fabric round trip (encode, queue,
# worker solve, reply decode, merge) — wider than the codec buckets,
# narrower than the default request buckets.
_VERDICT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0,
)


class _ShardMetrics:
    """Parent-side instrument handles and watermarks for one shard.

    Everything here is telemetry: the watermark pair (highest stream
    timestamp *sent* to the shard vs. highest the shard has *acked*)
    exists only to compute ingest lag in simulated-stream seconds and is
    never consulted by ingestion, recovery, or drain."""

    __slots__ = (
        "sent_watermark",
        "acked_watermark",
        "ingest_lag",
        "queue_depth",
        "buffered",
        "replay_log",
        "chunks",
        "recoveries",
        "duplicates",
        "verdict_latency",
        "encode_seconds",
        "up",
        "seconds_since_ack",
        "last_ack_clock",
        "last_send_clock",
        "_clock",
    )

    def __init__(
        self,
        registry: MetricsRegistry,
        index: int,
        transport_kind: str,
    ) -> None:
        labels = {"shard": str(index)}
        self.sent_watermark: Optional[int] = None
        self.acked_watermark: Optional[int] = None
        self._clock = registry.clock
        self.last_ack_clock: Optional[float] = None
        self.last_send_clock: Optional[float] = None
        self.up = registry.gauge("repro_shard_up", labels)
        self.up.set(1)
        self.seconds_since_ack = registry.gauge(
            "repro_shard_seconds_since_ack", labels
        )
        self.ingest_lag = registry.gauge(
            "repro_shard_ingest_lag_seconds", labels
        )
        self.queue_depth = registry.gauge(
            "repro_shard_queue_depth", labels
        )
        self.buffered = registry.gauge(
            "repro_shard_buffered_observations", labels
        )
        self.replay_log = registry.gauge(
            "repro_shard_replay_log_frames", labels
        )
        self.chunks = registry.counter(
            "repro_shard_chunks_sent_total", labels
        )
        self.recoveries = registry.counter(
            "repro_shard_recoveries_total", labels
        )
        self.duplicates = registry.counter(
            "repro_shard_duplicate_events_total", labels
        )
        self.verdict_latency = registry.histogram(
            "repro_verdict_latency_seconds",
            labels,
            buckets=_VERDICT_BUCKETS,
        )
        # Same label shape the transport's attach_metrics uses, so the
        # parent-side encode (which happens in _flush, before the bytes
        # reach the transport) lands in the same family.
        self.encode_seconds = registry.histogram(
            "repro_transport_encode_seconds",
            {
                "transport": transport_kind,
                "role": "parent",
                "shard": str(index),
            },
            buckets=_CODEC_BUCKETS,
        )

    def note_ack(self, watermark: Optional[int]) -> None:
        """Advance the acked watermark and refresh the lag gauge.

        Monotonic max: a recovery replay re-delivers old chunk replies
        whose echoed contexts carry stale watermarks — they must never
        move the ack line backwards."""
        self.last_ack_clock = self._clock()
        if watermark is None:
            return
        if self.acked_watermark is None or watermark > self.acked_watermark:
            self.acked_watermark = watermark
        if self.sent_watermark is not None:
            self.ingest_lag.set(
                max(0, self.sent_watermark - self.acked_watermark)
            )


class ShardedBackend(ExecutionBackend):
    """Open windows partitioned across worker processes by bucket key."""

    def __init__(self, context: BackendContext) -> None:
        super().__init__(context)
        config = context.config
        policy = config.execution
        self.shards = policy.shards
        self.chunk_size = policy.chunk_size
        self.transport_kind = policy.transport
        self.recoveries = 0             # dead workers brought back so far
        self._recovery = policy.recovery
        self._snapshot_every = policy.shard_checkpoint_every
        self._connect_timeout = policy.connect_timeout
        self._shard_hosts = policy.shard_hosts
        pipeline_config = config.pipeline_config()
        self._anomalies = pipeline_config.anomalies
        self._late_error = (
            config.execution.late_policy == LATE_ERROR
        )
        self._tracker = _GroupTracker(pipeline_config.granularities)
        self._discard = DiscardStats()
        self._stats = StreamStats()     # parent-side ingest counters
        self._conversion_cache: Dict = {}
        # The placement layer: every routing decision goes through the
        # current PartitionMap (seeded from the policy's shard count,
        # replaced wholesale by rebalance()); the cache memoizes its
        # answers per (url, anomaly) pair and is dropped on every epoch
        # change.
        self._placement = PartitionMap(policy.shards)
        self._rebalances = 0            # committed epoch changes
        self._moved_buckets = 0         # pairs migrated across all of them
        self._last_rebalance: Optional[float] = None  # unix seconds
        self._rebalance_allowed = policy.rebalance
        self._shard_cache: Dict[Tuple[str, str], int] = {}
        self._buffers: List[List[Tuple]] = [
            [] for _ in range(self.shards)
        ]
        self._workers: Optional[List[_ShardWorker]] = None
        self._listeners: Optional[List[ShardListener]] = None
        self._config_payload: Optional[Dict[str, Any]] = None
        self._want_events = False
        self._watermark: Optional[int] = None
        self._sequence = 0              # merged event stream counter
        self._last_measurement_id: Optional[int] = None
        self._drained: Optional[PipelineResult] = None
        self._restore_state: Optional[Dict[str, Any]] = None
        # Counters/logs carried over from a restored checkpoint; worker
        # deltas add onto these at drain.  (Confirmed-censor *counts*
        # have no baseline: restored workers re-derive their own from
        # their closed windows, so the per-shard sums stay exact.)
        self._baseline_stats: Dict[str, int] = {}
        self._baseline_identifications: List[Dict[str, Any]] = []
        self._merged_stats: Optional[StreamStats] = None
        self._merged_identifications: List = []
        # Observability (all optional, all side-band): per-shard parent
        # instruments, a tracer for verdict-latency spans, and the
        # highest buffered-but-unsent stream timestamp per shard.
        self._metrics = context.metrics
        self._spans = context.spans
        self._flight = context.flight
        self._flight_dir = context.flight_dir or ".flight-recorder"
        self._tracer: Optional[Tracer] = None
        self._shard_metrics: Optional[List[_ShardMetrics]] = None
        self._buffer_max_ts: List[Optional[int]] = [None] * self.shards
        if self._metrics is not None:
            self._tracer = Tracer(self._metrics)
            self._shard_metrics = [
                _ShardMetrics(self._metrics, index, self.transport_kind)
                for index in range(self.shards)
            ]
            self._metrics.add_collector(
                self._collect_shard_health, key="sharded-backend"
            )
            self._metrics.add_collector(
                self._collect_placement, key="sharded-placement"
            )
        self._merged_solve_stats: Optional[SolveStats] = None
        self._worker_telemetry: List[Dict[str, Any]] = []

    def _collect_shard_health(self, registry: MetricsRegistry) -> None:
        """Snapshot-time liveness: how long each shard has gone without
        acking while frames are outstanding.  Feeds ``/healthz`` — a
        hung-but-alive worker shows up here, not in ``repro_shard_up``.
        """
        # Local refs + a length guard: metrics scrapes run on their own
        # thread, and a live rebalance resizes these lists under us.
        workers = self._workers
        now = registry.clock()
        for index, shard_metrics in enumerate(list(self._shard_metrics)):
            outstanding = (
                workers[index].outstanding
                if workers is not None and index < len(workers)
                else 0
            )
            if outstanding <= 0:
                shard_metrics.seconds_since_ack.set(0.0)
                continue
            mark = (
                shard_metrics.last_ack_clock
                if shard_metrics.last_ack_clock is not None
                else shard_metrics.last_send_clock
            )
            shard_metrics.seconds_since_ack.set(
                max(0.0, now - mark) if mark is not None else 0.0
            )

    def _collect_placement(self, registry: MetricsRegistry) -> None:
        """Snapshot-time placement telemetry: the live map epoch, the
        fleet size, per-shard bucket (pair) counts, and when the last
        rebalance committed.  Pure reporting — never consulted by
        routing."""
        placement = self._placement
        registry.gauge("repro_placement_epoch").set(placement.epoch)
        registry.gauge("repro_placement_shards").set(self.shards)
        registry.gauge("repro_placement_last_rebalance_timestamp").set(
            self._last_rebalance or 0.0
        )
        for index, count in enumerate(
            placement.bucket_counts(self._known_pairs())
        ):
            registry.gauge(
                "repro_placement_buckets", {"shard": str(index)}
            ).set(count)

    def _known_pairs(self) -> List[Tuple[str, str]]:
        """Every (url, anomaly-value) pair the parent has routed so far
        — the rebalance work list (restored problems included, since
        ``restore()`` registers them with the tracker)."""
        return [
            (url, anomaly.value)
            for (anomaly, url) in list(self._tracker._by_pair)
        ]

    # -- worker lifecycle --------------------------------------------------

    def _hello(self, index: int) -> Tuple:
        # With metrics on, workers build their own registry (shipped
        # back at drain) and ack every obs chunk so ingest lag is
        # measurable even when no subscriber wants the events.
        options: Dict[str, Any] = {}
        if self._metrics is not None:
            options["metrics"] = True
            options["ack"] = True
        if self._spans is not None:
            options["spans"] = True
        if self._flight is not None:
            options["flight_dir"] = self._flight_dir
        return wire.hello_frame(
            index, self._config_payload, self._want_events,
            options or None,
        )

    def _open_transport(self, index: int):
        """One shard's channel: fork a pipe worker, or accept a socket.

        Called both at startup and on every recovery respawn — for
        sockets the shard's listener stays bound, so a replacement
        worker (self-spawned locally, or an operator-restarted
        ``shard-worker`` process) lands on the same address.
        """
        if self.transport_kind != TRANSPORT_SOCKET:
            ctx = _mp_context()
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_pipe_worker_entry,
                args=(child_conn,),
                # Daemonic: a parent that dies (or errors out) without
                # close()/drain() must not hang interpreter exit on
                # multiprocessing's atexit join — shard workers hold no
                # state worth a graceful shutdown.
                daemon=True,
            )
            process.start()
            child_conn.close()
            transport = PipeTransport(parent_conn)
            self._attach_transport_metrics(transport, index)
            return transport, process
        listener = self._listeners[index]
        process = None
        if not self._shard_hosts:
            # Self-hosted socket shards: the parent spawns its own
            # connecting workers on localhost (the smoke-testable shape
            # of the multi-host deployment).
            ctx = _mp_context()
            process = ctx.Process(
                target=_socket_worker_entry,
                args=(listener.address, self._connect_timeout),
                daemon=True,
            )
            process.start()
        try:
            transport = listener.accept(self._connect_timeout)
        except TransportError as exc:
            raise BackendError(str(exc)) from exc
        self._attach_transport_metrics(transport, index)
        return transport, process

    def _attach_transport_metrics(
        self, transport: ShardTransport, index: int
    ) -> None:
        if self._metrics is not None:
            transport.attach_metrics(
                self._metrics, {"role": "parent", "shard": str(index)}
            )
        if self._flight is not None:
            transport.attach_recorder(self._flight, shard=index)

    def _ensure_workers(self) -> List[_ShardWorker]:
        if self._workers is None:
            self._config_payload = self.context.config.to_dict()
            self._want_events = bool(self.context.subscribers)
            if (
                self.transport_kind == TRANSPORT_SOCKET
                and self._listeners is None
            ):
                addresses = self._shard_hosts or (
                    ("127.0.0.1:0",) * self.shards
                )
                # Bind everything before accepting anything, so external
                # workers may dial the addresses in any order (the TCP
                # backlog parks early arrivals).
                self._listeners = [
                    ShardListener(address) for address in addresses
                ]
            # Spawn incrementally so a failure on shard k (a socket
            # accept timing out, a fork failing) releases shards 0..k-1
            # instead of leaking their processes/connections.
            workers: List[_ShardWorker] = []
            try:
                for index in range(self.shards):
                    workers.append(_ShardWorker(self, index))
            except BaseException:
                for worker in workers:
                    worker.close(wait=False)
                if self._listeners is not None:
                    for listener in self._listeners:
                        listener.close()
                    self._listeners = None
                raise
            self._workers = workers
            if self._restore_state is not None:
                self._send_restore(self._restore_state)
                self._restore_state = None
        return self._workers

    def _add_worker(self, index: int) -> None:
        """Grow the fleet by one shard (the rebalance scale-up path).

        Self-hosted socket fleets get a fresh ephemeral listener; fixed
        ``shard_hosts`` fleets cannot grow (rebalance() refuses before
        calling here)."""
        assert self._workers is not None
        self._buffers.append([])
        self._buffer_max_ts.append(None)
        if (
            self.transport_kind == TRANSPORT_SOCKET
            and self._listeners is not None
        ):
            self._listeners.append(ShardListener("127.0.0.1:0"))
        if self._shard_metrics is not None:
            self._shard_metrics.append(
                _ShardMetrics(self._metrics, index, self.transport_kind)
            )
        self._workers.append(_ShardWorker(self, index))

    def _remove_worker(self, index: int) -> None:
        """Retire one drained shard (the rebalance scale-down path):
        consume every outstanding reply, zero its liveness gauges, ask
        it to exit.  The caller truncates the per-shard lists."""
        assert self._workers is not None
        worker = self._workers[index]
        while worker.outstanding > 0:
            self._handle_reply(worker, self._next_reply(worker))
        if self._shard_metrics is not None:
            shard_metrics = self._shard_metrics[index]
            shard_metrics.up.set(0)
            shard_metrics.buffered.set(0)
            shard_metrics.queue_depth.set(0)
        if self._metrics is not None:
            self._metrics.gauge(
                "repro_placement_buckets", {"shard": str(index)}
            ).set(0)
        worker.close(wait=False)

    @property
    def listen_addresses(self) -> List[str]:
        """The bound per-shard socket addresses (socket transport only)."""
        if self._listeners is None:
            return []
        return [listener.address for listener in self._listeners]

    def close(self, wait: bool = True) -> None:
        if self._workers is not None:
            for worker in self._workers:
                worker.close(wait=wait)
            self._workers = None
        if self._listeners is not None:
            for listener in self._listeners:
                listener.close()
            self._listeners = None

    # -- ingestion ---------------------------------------------------------

    def ingest_measurement(self, measurement: Measurement) -> None:
        """Parent-side conversion: one discard tally, one memo cache —
        the same semantics the inline engine applies internally."""
        self._check_not_drained()
        self._stats.measurements += 1
        self._last_measurement_id = measurement.measurement_id
        converted = observations_of(
            measurement,
            self.context.ip2as,
            anomalies=self._anomalies,
            stats=self._discard,
            conversion_cache=self._conversion_cache,
        )
        if not converted:
            self._stats.discarded_measurements += 1
            return
        for observation in converted:
            self._ingest(observation, count_measurement=False)

    def ingest_observation(self, observation: Observation) -> None:
        self._check_not_drained()
        self._ingest(observation, count_measurement=True)

    def _ingest(
        self, observation: Observation, count_measurement: bool
    ) -> None:
        # Hot path: every observation of every stream funnels through
        # here — prefer locals and single attribute reads.
        timestamp = observation.timestamp
        if timestamp < 0:
            raise ValueError(f"negative timestamp: {timestamp}")
        stats = self._stats
        if (
            count_measurement
            and observation.measurement_id != self._last_measurement_id
        ):
            stats.measurements += 1
            self._last_measurement_id = observation.measurement_id
        stats.observations += 1
        if self._watermark is None or timestamp > self._watermark:
            self._watermark = timestamp
        if self._late_error:
            # The strict-ordering policy is a *global* promise; shard
            # engines only see their own lagging watermarks, so the
            # parent enforces it against the global one (the same
            # already-elapsed-window rule the inline engine applies).
            for _, size in self._tracker.sizes:
                if window_start(timestamp, size) + size <= self._watermark:
                    raise StreamOrderError(
                        f"late observation at t={timestamp} for already-"
                        f"elapsed {size}s window"
                    )
        self._tracker.add(observation)
        # Enum .value is a descriptor call — resolve it once for the
        # shard route and hand it to the encoder.
        anomaly_value = observation.anomaly.value
        route = (observation.url, anomaly_value)
        shard = self._shard_cache.get(route)
        if shard is None:
            shard = self._shard_cache[route] = self._placement.shard_for(
                route[0], route[1]
            )
        buffer = self._buffers[shard]
        buffer.append(wire.observation_to_wire(observation, anomaly_value))
        if self._shard_metrics is not None:
            high = self._buffer_max_ts[shard]
            if high is None or timestamp > high:
                self._buffer_max_ts[shard] = timestamp
            self._shard_metrics[shard].buffered.set(len(buffer))
        if len(buffer) >= self.chunk_size:
            self._flush(shard)

    def advance(self, timestamp: int) -> None:
        self._check_not_drained()
        if self._watermark is None or timestamp > self._watermark:
            self._watermark = timestamp
        workers = self._ensure_workers()
        self._flush_all()
        frame = wire.encode(("advance", timestamp))
        for worker in workers:
            self._post_frame(worker, frame)
        self._pump()
        # Same reply bound as _flush: a keep-alive-heavy source must not
        # grow the parent-side queues without limit.
        for worker in workers:
            while worker.outstanding >= MAX_OUTSTANDING:
                self._handle_reply(worker, self._next_reply(worker))

    def merge_discard_stats(self, stats: DiscardStats) -> None:
        self._discard.merge(stats)

    def _check_not_drained(self) -> None:
        if self._drained is not None:
            raise RuntimeError("backend already drained")

    # -- worker I/O --------------------------------------------------------

    def _post_frame(
        self,
        worker: _ShardWorker,
        frame: bytes,
        expects_reply: bool = True,
    ) -> None:
        """Log one state-mutating frame for recovery replay, then ship it.

        Logged *before* the send: if the send itself discovers a dead
        peer, the recovery replay already includes this frame.
        ``expects_reply=False`` marks fire-and-forget frames (obs chunks
        with no subscribers attached)."""
        worker.log.append((frame, expects_reply))
        try:
            worker.transport.send_bytes(frame)
        except OSError:
            self._recover(worker)
            return                      # replay shipped it (and counted it)
        if expects_reply:
            worker.outstanding += 1

    def _send_request(self, worker: _ShardWorker, frame: bytes) -> None:
        """Ship one read-only request (state/drain); never logged."""
        while True:
            try:
                worker.transport.send_bytes(frame)
            except OSError:
                self._recover(worker)
                continue
            worker.outstanding += 1
            return

    def _flush(self, shard: int) -> None:
        workers = self._ensure_workers()
        buffer = self._buffers[shard]
        if not buffer:
            return
        worker = workers[shard]
        shard_metrics = (
            self._shard_metrics[shard]
            if self._shard_metrics is not None
            else None
        )
        if shard_metrics is None:
            frame = wire.encode(("obs", buffer))
            expects_reply = self._want_events
        else:
            # One span per chunk: the context rides the frame, the
            # worker echoes it on its reply, and the verdict-latency
            # histogram closes on the parent's clock at delivery —
            # both stamps one process, no cross-host clock trust.
            watermark = self._buffer_max_ts[shard]
            context = self._tracer.start(watermark=watermark)
            clock = self._metrics.clock
            started = clock()
            frame = wire.encode(("obs", buffer, context.to_wire()))
            shard_metrics.encode_seconds.observe(clock() - started)
            if watermark is not None and (
                shard_metrics.sent_watermark is None
                or watermark > shard_metrics.sent_watermark
            ):
                shard_metrics.sent_watermark = watermark
            self._buffer_max_ts[shard] = None
            shard_metrics.chunks.inc()
            shard_metrics.last_send_clock = started
            expects_reply = True        # the worker acks in metrics mode
        self._post_frame(worker, frame, expects_reply=expects_reply)
        self._buffers[shard] = []
        if shard_metrics is not None:
            shard_metrics.buffered.set(0)
            shard_metrics.queue_depth.set(worker.outstanding)
            shard_metrics.replay_log.set(len(worker.log))
        worker.chunks_since_snapshot += 1
        self._maybe_snapshot(worker)
        self._pump()
        while worker.outstanding >= MAX_OUTSTANDING:
            self._handle_reply(worker, self._next_reply(worker))

    def _flush_all(self) -> None:
        for shard in range(self.shards):
            self._flush(shard)

    def _maybe_snapshot(self, worker: _ShardWorker) -> None:
        """Request a recovery snapshot when the shard's log is due one.

        The reply (handled asynchronously in ``_handle_reply``) becomes
        the shard's new baseline and truncates the frames it covers —
        bounding both replay time after a crash and parent-side log
        memory on long streams."""
        if (
            not self._snapshot_every
            or worker.snapshot_mark is not None
            or worker.chunks_since_snapshot < self._snapshot_every
        ):
            return
        worker.snapshot_mark = len(worker.log)
        self._send_request(worker, wire.encode(("state",)))

    def _next_reply(
        self,
        worker: _ShardWorker,
        timeout: Optional[float] = None,
        resend: Optional[bytes] = None,
    ) -> Tuple:
        """One reply off the worker's queue, recovering a dead worker
        transparently.  ``resend`` re-ships a pending read-only request
        (state/drain) after a recovery, since those are not in the
        replay log."""
        while True:
            try:
                reply = worker.queue.get(timeout=timeout)
            except queue_module.Empty:
                raise BackendError(
                    f"shard {worker.index} did not reply within {timeout}s"
                ) from None
            if reply is None:
                self._recover(worker)
                if resend is not None:
                    self._send_request(worker, resend)
                continue
            if reply[0] == "error":
                self._raise_worker_error(worker, reply[1])
            return reply

    def _raise_worker_error(self, worker: _ShardWorker, formatted: str):
        """A worker shipped an error frame: narrate the full remote
        traceback through the structured log, then surface it."""
        _log.error(
            "shard.error",
            extra=obslog.fields(shard=worker.index, traceback=formatted),
        )
        raise BackendError(
            f"shard {worker.index} failed:\n{formatted}"
        )

    def _pump(self) -> None:
        """Drain every already-available worker reply (non-blocking)."""
        if self._workers is None:
            return
        for worker in self._workers:
            while True:
                try:
                    reply = worker.queue.get_nowait()
                except queue_module.Empty:
                    break
                if reply is None:
                    self._recover(worker)
                    break
                if reply[0] == "error":
                    self._raise_worker_error(worker, reply[1])
                self._handle_reply(worker, reply)

    def _handle_reply(self, worker: _ShardWorker, reply: Tuple) -> None:
        kind = reply[0]
        if kind == "events":
            worker.outstanding -= 1
            worker.failures = 0
            context = reply[2] if len(reply) > 2 else None
            self._deliver(worker, reply[1], context=context)
            if self._shard_metrics is not None:
                shard_metrics = self._shard_metrics[worker.index]
                shard_metrics.queue_depth.set(worker.outstanding)
                if context is not None:
                    shard_metrics.note_ack(context[2])
        elif kind == "ok":
            worker.outstanding -= 1
            worker.failures = 0
        elif kind == "hello":
            # Deliberately not a failure reset: a worker that acks the
            # hello and then dies is still a chronic crasher.
            worker.outstanding -= 1
            wire.check_hello_ack(reply)
        elif kind == "state":
            worker.outstanding -= 1
            worker.failures = 0
            self._adopt_snapshot(worker, reply[1])
        else:  # pragma: no cover - protocol bug guard
            raise BackendError(
                f"unexpected reply {kind!r} from shard {worker.index}"
            )

    def _adopt_snapshot(
        self, worker: _ShardWorker, state: Dict[str, Any]
    ) -> None:
        if worker.snapshot_mark is None:
            raise BackendError(
                f"unsolicited state payload from shard {worker.index}"
            )
        worker.baseline = state
        del worker.log[: worker.snapshot_mark]
        worker.snapshot_mark = None
        worker.chunks_since_snapshot = 0

    def _deliver(
        self,
        worker: _ShardWorker,
        event_payloads: Tuple,
        context: Optional[Tuple] = None,
    ) -> None:
        """Forward one shard's event batch, re-sequenced into the merged
        stream.  Per-shard order is preserved exactly; cross-shard order
        follows batch arrival.  ``observations_ingested`` counters inside
        the events are shard-local by construction.

        Events at or below the shard's delivered high-water are replay
        duplicates from a recovery (the worker re-emits them with the
        same shard-local sequences, because the replayed frame stream is
        identical) and are dropped — subscribers see each event exactly
        once.

        ``context`` is the trace context echoed off the chunk that
        produced this batch; each *fresh* event closes one verdict-
        latency span against it (ingest → shard queue → solve → merge,
        measured entirely on the parent's clock)."""
        if not event_payloads:
            return
        seq = wire.EVENT_SEQUENCE_INDEX
        high = worker.delivered_seq
        fresh = [
            payload for payload in event_payloads if payload[seq] > high
        ]
        if self._shard_metrics is not None and len(fresh) != len(
            event_payloads
        ):
            self._shard_metrics[worker.index].duplicates.inc(
                len(event_payloads) - len(fresh)
            )
        if not fresh:
            return
        worker.delivered_seq = fresh[-1][seq]
        if self._tracer is not None and context is not None:
            latency = self._tracer.elapsed(TraceContext.from_wire(context))
            histogram = self._shard_metrics[worker.index].verdict_latency
            for _ in fresh:
                histogram.observe(latency)
            if self._spans is not None:
                # One parent-side span per delivered batch: ingest →
                # shard queue → propagation → merge, both stamps on the
                # parent's clock (TraceContext.started is clock-domain
                # compatible only when span + metrics clocks agree,
                # which Session.enable_tracing guarantees).
                self._spans.record(
                    "verdict.batch",
                    start=context[1],
                    duration=latency,
                    category="fabric",
                    track=shard_track(worker.index),
                    events=len(fresh),
                )
        if not self.context.subscribers:
            return
        for payload in fresh:
            self._sequence += 1
            event = replace(
                wire.event_from_wire(payload), sequence=self._sequence
            )
            for subscriber in self.context.subscribers:
                subscriber(event)

    # -- dead-shard recovery -----------------------------------------------

    def _recover(self, worker: _ShardWorker) -> None:
        """Bring a dead worker back from its baseline + replay log.

        The replacement process (pipe: a fresh fork; socket: the next
        connection accepted on the shard's listener) restores the
        baseline slice, then re-processes every logged frame in order.
        Determinism does the rest: the rebuilt engine re-emits exactly
        the events the dead one did, and ``_deliver`` drops the ones
        already handed out."""
        detail = worker.exit_description()
        _log.warning(
            "shard.death",
            extra=obslog.fields(shard=worker.index, detail=detail),
        )
        if self._shard_metrics is not None:
            self._shard_metrics[worker.index].up.set(0)
        flight_dump = ""
        if self._flight is not None:
            # The dead worker cannot dump its own ring buffer, so the
            # parent dumps *its* view: the shard's frame headers plus a
            # summary of the replay log about to rebuild it.
            flight_dump = self._flight.dump(
                self._flight_dir,
                reason=f"shard-{worker.index}-death",
                extra={
                    "shard": worker.index,
                    "detail": detail,
                    "replay_log": [
                        {"size": len(frame), "expects_reply": expects}
                        for frame, expects in worker.log
                    ],
                },
            )
        if not self._recovery:
            raise BackendError(
                f"shard {worker.index} died ({detail}); recovery is "
                f"disabled by the execution policy"
            )
        frames_replayed = len(worker.log)
        while True:
            # The failure budget lives on the worker and only resets when
            # a recovered incarnation *serves* something (a non-hello
            # reply, in _handle_reply/_collect) — so a worker that keeps
            # crashing right after a vacuously successful rebuild (empty
            # log, buffered sends) exhausts the budget instead of
            # respawn-looping forever.
            worker.failures += 1
            if worker.failures > RECOVERY_ATTEMPTS:
                raise BackendError(
                    f"shard {worker.index} died ({detail}) and kept "
                    f"failing through {RECOVERY_ATTEMPTS} recovery "
                    f"attempts"
                )
            worker.discard()
            try:
                worker.spawn()
            except (BackendError, OSError):
                continue
            if self._rebuild(worker):
                self.recoveries += 1
                if self._shard_metrics is not None:
                    shard_metrics = self._shard_metrics[worker.index]
                    shard_metrics.recoveries.inc()
                    shard_metrics.up.set(1)
                _log.info(
                    "shard.recovery",
                    extra=obslog.fields(
                        shard=worker.index,
                        attempt=worker.failures,
                        frames_replayed=frames_replayed,
                        flight_dump=flight_dump,
                    ),
                )
                return

    def _rebuild(self, worker: _ShardWorker) -> bool:
        """One baseline-restore + log-replay attempt; False on a death
        mid-replay (the caller respawns and starts over — the log is
        only ever truncated by confirmed snapshots, so a replay can
        safely restart from the top)."""
        try:
            if worker.baseline is not None:
                worker.transport.send_bytes(
                    wire.encode(("restore", worker.baseline))
                )
                worker.outstanding += 1
            for frame, expects_reply in list(worker.log):
                worker.transport.send_bytes(frame)
                if expects_reply:
                    worker.outstanding += 1
                while worker.outstanding >= MAX_OUTSTANDING:
                    reply = worker.queue.get()
                    if reply is None:
                        return False
                    if reply[0] == "error":
                        self._raise_worker_error(worker, reply[1])
                    self._handle_reply(worker, reply)
        except OSError:
            return False
        return True

    # -- worker-reply collection -------------------------------------------

    def _collect(self, request: Tuple, reply_tag: str) -> List[Any]:
        """Ship one request to every worker and gather the tagged
        replies, servicing interleaved event batches on the way."""
        workers = self._ensure_workers()
        self._flush_all()
        # Settle any in-flight recovery snapshots first, so a "state"
        # reply below can only belong to this collection.
        for worker in workers:
            while worker.snapshot_mark is not None:
                self._handle_reply(worker, self._next_reply(worker))
        frame = wire.encode(request)
        for worker in workers:
            self._send_request(worker, frame)
        payloads: List[Any] = []
        for worker in workers:
            while True:
                reply = self._next_reply(worker, resend=frame)
                if reply[0] == reply_tag:
                    worker.outstanding -= 1
                    worker.failures = 0
                    payloads.append(reply[1])
                    break
                self._handle_reply(worker, reply)
        return payloads

    def _request_one(
        self, worker: _ShardWorker, frame: bytes, reply_tag: str
    ) -> Tuple:
        """One read-only request to one worker; returns the whole tagged
        reply, servicing interleaved replies (and recoveries) on the
        way — the single-shard sibling of :meth:`_collect`."""
        self._send_request(worker, frame)
        while True:
            reply = self._next_reply(worker, resend=frame)
            if reply[0] == reply_tag:
                worker.outstanding -= 1
                worker.failures = 0
                return reply
            self._handle_reply(worker, reply)

    def _merge_counters(
        self, payloads: List[Dict[str, Any]]
    ) -> Tuple[StreamStats, Dict[int, int], List[Dict[str, Any]]]:
        """Fold worker stats/confirmed/identifications into the globals.

        The parent counted measurements/observations once, globally, so
        worker tallies for those are shard-local double bookkeeping and
        get overwritten.  Baseline identifications whose censor has lost
        every confirming window since the restore (late reopen,
        re-closed without it) are dropped — the same log pruning the
        inline engine's ``_reopen`` performs.
        """
        merged_stats = StreamStats(**self._baseline_stats) if (
            self._baseline_stats
        ) else StreamStats()
        merged_confirmed: Dict[int, int] = {}
        identification_payloads = list(self._baseline_identifications)
        for payload in payloads:
            for name, value in payload["stats"].items():
                setattr(
                    merged_stats, name, getattr(merged_stats, name) + value
                )
            for asn, count in payload["confirmed"].items():
                merged_confirmed[int(asn)] = (
                    merged_confirmed.get(int(asn), 0) + count
                )
            identification_payloads.extend(payload["identifications"])
        merged_stats.measurements = self._stats.measurements
        merged_stats.observations = self._stats.observations
        merged_stats.discarded_measurements = (
            self._stats.discarded_measurements
        )
        identification_payloads = [
            entry
            for entry in identification_payloads
            if merged_confirmed.get(entry["asn"], 0) > 0
        ]
        return merged_stats, merged_confirmed, identification_payloads

    # -- draining ----------------------------------------------------------

    def drain(self) -> PipelineResult:
        if self._drained is not None:
            return self._drained
        if self._spans is not None:
            with self._spans.span("drain.collect", category="fabric"):
                payloads = self._collect(("drain",), "drain")
        else:
            payloads = self._collect(("drain",), "drain")
        for worker in self._workers:
            worker.request_stop()   # workers exit while the parent merges
        # Keyed on the (frozen, hashable) ProblemKey objects themselves:
        # the unpickled worker keys equal the tracker's, and enum fields
        # resolve to the same singletons — no id-tuple re-derivation.
        merge_started = (
            self._spans.clock() if self._spans is not None else None
        )
        solutions_by_key: Dict[ProblemKey, Optional[Any]] = {}
        counter_payloads = []
        for worker, payload in zip(self._workers, payloads):
            # payload[:5] is the canonical drain contract; the optional
            # sixth element (format 2) is side-band telemetry and never
            # influences the merged result.
            events, problems, stats, confirmed, identifications = (
                payload[:5]
            )
            telemetry = payload[5] if len(payload) > 5 else None
            self._deliver(worker, events)
            for key, solution in problems:
                solutions_by_key[key] = solution
            counter_payloads.append(
                {
                    "stats": stats,
                    "confirmed": confirmed,
                    "identifications": identifications,
                }
            )
            if telemetry:
                self._adopt_telemetry(worker.index, telemetry)
        merged_stats, _, identification_payloads = self._merge_counters(
            counter_payloads
        )
        self._merged_stats = merged_stats
        self._merged_identifications = _merge_identifications(
            identification_payloads
        )
        # Merge in the parent's global creation order — the exact order
        # the batch splitter would have produced, which downstream
        # consumers (reduction fractions) are contractually tied to.
        solutions = []
        groups: Dict[ProblemKey, List[Observation]] = {}
        tracker = self._tracker
        missing = object()
        for bucket in tracker.order:
            key = tracker.keys[bucket]
            solution = solutions_by_key.get(key, missing)
            if solution is missing:
                raise BackendError(f"no shard reported problem {key}")
            if solution is not None:
                solutions.append(solution)
            groups[key] = tracker.groups[bucket]
        self._drained = assemble_result(
            solutions, groups, self._discard, self.context.country_by_asn
        )
        if self._spans is not None:
            self._spans.record(
                "drain.merge",
                start=merge_started,
                duration=self._spans.clock() - merge_started,
                category="fabric",
                problems=len(solutions_by_key),
            )
        self.close()
        return self._drained

    def _adopt_telemetry(
        self, index: int, telemetry: Dict[str, Any]
    ) -> None:
        """Fold one worker's drain telemetry into the parent's view.

        Solve-cache counters sum across shards (each shard solved a
        disjoint problem set, so the totals are exact); the worker's
        metrics snapshot merges into the parent registry with a
        ``shard`` label so worker-side series never collide with the
        parent's own."""
        solve = telemetry.get("solve_stats")
        if solve:
            if self._merged_solve_stats is None:
                self._merged_solve_stats = SolveStats()
            merged = self._merged_solve_stats
            for name, value in solve.items():
                setattr(merged, name, getattr(merged, name) + value)
        snapshot = telemetry.get("metrics")
        if snapshot and self._metrics is not None:
            self._metrics.merge(
                snapshot, extra_labels={"shard": str(index)}
            )
        worker_spans = telemetry.get("spans")
        if worker_spans and self._spans is not None:
            self._spans.merge(worker_spans, track=shard_track(index))
        self._worker_telemetry.append({"shard": index, **telemetry})

    @property
    def solve_stats(self) -> Optional[SolveStats]:
        """Merged worker solve-cache counters; populated at drain."""
        return self._merged_solve_stats

    @property
    def worker_telemetry(self) -> List[Dict[str, Any]]:
        """Raw per-shard drain telemetry dicts (diagnostics only)."""
        return list(self._worker_telemetry)

    def run_dataset(
        self,
        dataset: Dataset,
        without_churn: bool = False,
        timer: Optional[StageTimer] = None,
    ) -> PipelineResult:
        """Batch workload: convert once up front, route, drain."""
        if (
            self._tracker.order
            or self._restore_state is not None
            or self._watermark is not None
        ):
            raise RuntimeError(
                "run_dataset() needs a fresh backend; this one already "
                "holds ingested or restored state — keep using the "
                "incremental surface and drain()"
            )
        with maybe_stage(timer, "pipeline.observations"):
            observations, stats = build_observations(
                dataset, self.context.ip2as, anomalies=self._anomalies
            )
        self.merge_discard_stats(stats)
        if without_churn:
            observations = first_path_only(observations)
        with maybe_stage(timer, "pipeline.sharded"):
            for observation in observations:
                self._ingest(observation, count_measurement=True)
            return self.drain()

    # -- checkpointing -----------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Merge per-shard engine states into one backend-agnostic dict.

        Problems come back in the parent's global creation order; the
        watermark is the global one (for an in-order stream every shard's
        future is at or past it).  Worker counters merge additively on
        top of any restored baseline; drain bytes never depend on them.

        As a side effect, each shard's reply becomes its new recovery
        baseline (it covers every frame sent so far), truncating the
        replay log for free.
        """
        if self._drained is not None:
            raise RuntimeError(
                "backend already drained; checkpoint before drain()"
            )
        payloads = self._collect(("state",), "state")
        for worker, shard_state in zip(self._workers, payloads):
            worker.baseline = shard_state
            worker.log.clear()
            worker.chunks_since_snapshot = 0
        problems_by_key: Dict[Tuple, Dict[str, Any]] = {}
        max_sequence = 0
        for shard_state in payloads:
            for entry in shard_state["problems"]:
                key = problem_key_from_dict(entry["key"])
                problems_by_key[_key_id(key)] = entry
            max_sequence = max(max_sequence, shard_state["sequence"])
        merged_stats, merged_confirmed, identification_payloads = (
            self._merge_counters(payloads)
        )
        problems = []
        for bucket in self._tracker.order:
            key_id = _key_id(self._tracker.keys[bucket])
            if key_id not in problems_by_key:
                raise BackendError(
                    f"no shard reported problem "
                    f"{self._tracker.keys[bucket]}"
                )
            problems.append(problems_by_key[key_id])
        identifications = _sort_identification_payloads(
            identification_payloads
        )
        return {
            "format": STATE_FORMAT,
            "watermark": self._watermark,
            "sequence": max(self._sequence, max_sequence),
            "last_measurement_id": self._last_measurement_id,
            "stats": merged_stats.as_dict(),
            "discard": discard_to_dict(self._discard),
            "confirmed": {
                str(asn): count
                for asn, count in sorted(merged_confirmed.items())
            },
            "identifications": identifications,
            "problems": problems,
        }

    def restore(self, state: Dict[str, Any]) -> None:
        if state.get("format") != STATE_FORMAT:
            raise ValueError(
                f"unsupported engine-state format {state.get('format')!r}"
            )
        if self._workers is not None or self._tracker.order:
            raise RuntimeError("restore() must precede any ingestion")
        for entry in state["problems"]:
            key = problem_key_from_dict(entry["key"])
            self._tracker.register(
                key,
                [
                    observation_from_dict(payload)
                    for payload in entry["observations"]
                ],
            )
        self._watermark = state["watermark"]
        self._sequence = state["sequence"]
        self._last_measurement_id = state["last_measurement_id"]
        stats = dict(state["stats"])
        self._stats.measurements = stats.get("measurements", 0)
        self._stats.observations = stats.get("observations", 0)
        self._stats.discarded_measurements = stats.get(
            "discarded_measurements", 0
        )
        # The merged problem/solve counters cannot be un-merged into
        # shard engines; they ride along as a parent-side baseline and
        # the restored workers start their own counters at zero.
        for name in ("measurements", "observations",
                     "discarded_measurements"):
            stats[name] = 0
        self._baseline_stats = stats
        self._baseline_identifications = list(state["identifications"])
        self._discard = discard_from_dict(state["discard"])
        self._restore_state = state

    def _send_restore(self, state: Dict[str, Any]) -> None:
        """Partition the merged state by shard key and ship each slice.

        Each worker's confirmed-censor counts are re-derived from the
        closed windows in its slice (a closed window confirms exactly
        its solution's censors, unsatisfiable windows none) — the same
        invariant the live engine maintains incrementally — so late
        reopens after a restore decrement real counts, and the per-shard
        sums reported at drain/state stay exact without a parent-side
        baseline.

        Each slice doubles as the shard's recovery baseline: a worker
        that dies later restarts from it plus the replay log.
        """
        assert self._workers is not None
        slices = split_state(state, self._placement, self.shards)
        for worker, shard_slice in zip(self._workers, slices):
            worker.baseline = shard_slice
            worker.log.clear()
            worker.delivered_seq = 0
            worker.chunks_since_snapshot = 0
            self._send_request(worker, wire.encode(("restore", shard_slice)))
        for worker in self._workers:
            while worker.outstanding > 0:
                self._handle_reply(worker, self._next_reply(worker))

    # -- elastic sharding --------------------------------------------------

    @property
    def placement(self) -> PartitionMap:
        """The live routing map."""
        return self._placement

    def rebalance(self, new_map: PartitionMap) -> Dict[str, Any]:
        """Move the fleet to ``new_map`` live, mid-stream.

        Only the moving (URL, anomaly) pairs quiesce: sources extract
        them into an epoch-keyed stash (``rebalance_begin``, logged —
        recovery replay re-extracts deterministically), the parent
        fetches each stash (``slice_fetch``, read-only, resent after a
        recovery like ``state``), regroups the problems by the new map,
        ships each destination its slice (``slice_transfer``, logged),
        and commits the epoch everywhere.  Non-moving pairs never stop
        flowing, and in-flight replay duplicates stay deduplicated by
        the same shard-local sequences dead-shard recovery uses.

        The drain stays byte-identical because nothing the merged result
        depends on lives in the placement: solutions merge in the
        parent's global creation order whatever shard closed them, and
        stats/confirmed/identification accounting travels with the
        moved pairs.
        """
        self._check_not_drained()
        if not self._rebalance_allowed:
            raise BackendError(
                "rebalance is disabled by the execution policy "
                "(ExecutionPolicy.rebalance=False)"
            )
        old_map = self._placement
        if new_map.shards != self.shards and self._shard_hosts:
            raise BackendError(
                "cannot change the shard count of a fixed shard_hosts "
                "fleet; bucket moves (overrides) are still allowed"
            )
        if new_map.epoch <= old_map.epoch:
            # Maps built from scratch start at epoch 1; adopt the layout
            # but force the epoch forward so commit frames (and worker
            # stashes) stay unambiguous.
            new_map = PartitionMap(
                new_map.shards,
                epoch=old_map.epoch + 1,
                overrides=new_map.overrides,
                vnodes=new_map.vnodes,
            )
        started = time.perf_counter()
        workers = self._ensure_workers()
        # Every already-routed observation must reach its old owner
        # before any slice extraction sees the engine.
        self._flush_all()
        # Settle in-flight recovery snapshots so a "state" reply cannot
        # interleave with the "slice" replies below.
        for worker in workers:
            while worker.snapshot_mark is not None:
                self._handle_reply(worker, self._next_reply(worker))
        # Grow first, so every destination exists before transfers.
        for index in range(self.shards, new_map.shards):
            self._add_worker(index)
        pairs = self._known_pairs()
        moved = old_map.moved_pairs(new_map, pairs)
        epoch = new_map.epoch
        by_source: Dict[int, List[Tuple[str, str]]] = {}
        for pair, (source, _) in moved.items():
            by_source.setdefault(source, []).append(pair)
        # Phase 1 — extract: each source stashes its moving problems.
        for source in sorted(by_source):
            self._post_frame(
                workers[source],
                wire.encode(
                    wire.rebalance_begin_frame(
                        epoch, sorted(by_source[source])
                    )
                ),
            )
        # Phase 2 — fetch each stash and regroup by destination.
        dest_problems: Dict[int, List[Dict[str, Any]]] = {}
        dest_idents: Dict[int, List[Dict[str, Any]]] = {}
        for source in sorted(by_source):
            reply = self._request_one(
                workers[source],
                wire.encode(wire.slice_fetch_frame(epoch)),
                "slice",
            )
            slice_state = reply[2]
            for entry in slice_state["problems"]:
                dest = new_map.shard_for(
                    entry["key"]["url"], entry["key"]["anomaly"]
                )
                dest_problems.setdefault(dest, []).append(entry)
            for ident in slice_state.get("identifications") or []:
                dest = new_map.shard_for(
                    ident["key"]["url"], ident["key"]["anomaly"]
                )
                dest_idents.setdefault(dest, []).append(ident)
        # Phase 3 — transfer: each destination adopts its incoming
        # problems (logged, so its recovery replay re-adopts them).
        for dest in sorted(set(dest_problems) | set(dest_idents)):
            problems = dest_problems.get(dest, [])
            payload = state_slice(
                problems,
                watermark=self._watermark,
                confirmed=confirmed_from_problems(problems),
                identifications=dest_idents.get(dest) or [],
            )
            self._post_frame(
                workers[dest],
                wire.encode(wire.slice_transfer_frame(epoch, payload)),
            )
        # Phase 4 — commit everywhere: stashes die, the epoch is live.
        commit = wire.encode(wire.rebalance_commit_frame(epoch))
        for worker in workers:
            self._post_frame(worker, commit)
        # Route by the new map from here on.
        self._placement = new_map
        self._shard_cache.clear()
        removed = list(range(new_map.shards, self.shards))
        self.shards = new_map.shards
        for index in removed:       # shrink: retire drained workers
            self._remove_worker(index)
        if removed:
            del self._workers[self.shards:]
            del self._buffers[self.shards:]
            del self._buffer_max_ts[self.shards:]
            if self._listeners is not None:
                for listener in self._listeners[self.shards:]:
                    listener.close()
                del self._listeners[self.shards:]
            if self._shard_metrics is not None:
                del self._shard_metrics[self.shards:]
        elapsed = time.perf_counter() - started
        self._rebalances += 1
        self._moved_buckets += len(moved)
        self._last_rebalance = time.time()
        if self._metrics is not None:
            self._metrics.counter("repro_rebalances_total").inc()
            self._metrics.counter(
                "repro_rebalance_moved_buckets_total"
            ).inc(len(moved))
        _log.info(
            "placement.rebalance",
            extra=obslog.fields(
                epoch=epoch,
                shards=self.shards,
                moved=len(moved),
                seconds=round(elapsed, 6),
            ),
        )
        return {
            "epoch": epoch,
            "shards": self.shards,
            "moved_buckets": len(moved),
            "seconds": elapsed,
        }

    def add_shard(self) -> Dict[str, Any]:
        """Grow by one worker, migrating ~1/N of the buckets to it."""
        return self.rebalance(
            self._placement.with_shards(self.shards + 1)
        )

    def remove_shard(self) -> Dict[str, Any]:
        """Shrink by one worker, migrating its buckets off first."""
        if self.shards <= 1:
            raise BackendError("cannot remove the last shard")
        return self.rebalance(
            self._placement.with_shards(self.shards - 1)
        )

    def shard_load(self) -> List[Dict[str, Any]]:
        """Per-shard load signals for the autoscaler: ingest lag in
        simulated-stream seconds (metrics mode only; 0.0 otherwise) and
        outstanding-reply queue depth."""
        if self._workers is None:
            return [
                {"shard": index, "lag": 0.0, "queue": 0}
                for index in range(self.shards)
            ]
        load: List[Dict[str, Any]] = []
        for index, worker in enumerate(self._workers):
            lag = 0.0
            if self._shard_metrics is not None:
                shard_metrics = self._shard_metrics[index]
                if (
                    shard_metrics.sent_watermark is not None
                    and shard_metrics.acked_watermark is not None
                ):
                    lag = float(
                        max(
                            0,
                            shard_metrics.sent_watermark
                            - shard_metrics.acked_watermark,
                        )
                    )
            load.append(
                {"shard": index, "lag": lag, "queue": worker.outstanding}
            )
        return load

    def placement_status(self) -> Dict[str, Any]:
        """Operator view of the placement layer (statusz / top)."""
        return {
            "epoch": self._placement.epoch,
            "shards": self.shards,
            "bucket_counts": self._placement.bucket_counts(
                self._known_pairs()
            ),
            "overrides": len(self._placement.overrides),
            "rebalances": self._rebalances,
            "moved_buckets": self._moved_buckets,
            "last_rebalance": self._last_rebalance,
        }

    # -- reporting ---------------------------------------------------------

    @property
    def stats(self) -> StreamStats:
        """Merged counters: exact after drain, parent-side before."""
        if self._merged_stats is not None:
            return self._merged_stats
        return self._stats

    @property
    def identifications(self) -> List:
        """Confirmed-censor log, merged across shards at drain.

        Ordered and deduplicated on simulated time (globally
        comparable); each entry's ``observations_ingested`` /
        ``measurements_ingested`` counters remain the confirming
        *shard's* tallies, like the event counters.
        """
        return self._merged_identifications


def _sort_identification_payloads(
    payloads: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Merge identification logs on the only globally comparable clock.

    ``timestamp`` is simulated time — identical meaning in every shard
    and in a restored checkpoint's baseline — whereas the ingest
    counters inside each entry are shard-local tallies (documented as
    such).  Sorting and re-sequencing by (timestamp, asn) keeps the
    merged log deterministic across shard counts and restarts.
    """
    ordered = sorted(
        payloads,
        key=lambda entry: (entry["timestamp"], entry["asn"]),
    )
    return [
        dict(entry, sequence=index + 1)
        for index, entry in enumerate(ordered)
    ]


def _merge_identifications(payloads: List[Dict[str, Any]]) -> List:
    merged = []
    seen = set()
    for entry in _sort_identification_payloads(payloads):
        if entry["asn"] in seen:
            continue  # another shard confirmed later; keep the earliest
        seen.add(entry["asn"])
        merged.append(identification_from_dict(entry))
    return merged


def backend_for(context: BackendContext) -> ExecutionBackend:
    """Instantiate the backend the context's execution policy names."""
    name = context.config.execution.backend
    if name == "inline":
        return InlineBackend(context)
    if name == "sharded":
        return ShardedBackend(context)
    raise ValueError(f"unknown backend {name!r}")


__all__ = [
    "BackendContext",
    "BackendError",
    "ExecutionBackend",
    "InlineBackend",
    "ShardedBackend",
    "backend_for",
    "run_shard_worker",
    "shard_of",
]
