"""Checkpoint files: a session's config + engine state, atomically on disk.

One JSON document holds everything a restarted consumer needs to resume
mid-campaign: the :class:`~repro.api.config.SessionConfig` (which
deterministically regenerates the world, and therefore the IP-to-AS
database the restored engine converts with) and the backend-agnostic
engine state (:mod:`repro.stream.checkpoint` format).  Because the state
is backend-agnostic, a checkpoint written under the inline backend can be
restored under the sharded one — or under a different shard count — and
vice versa.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

from repro.util.fsio import atomic_write_bytes

CHECKPOINT_FORMAT = 1


def write_checkpoint(
    path: os.PathLike,
    config_payload: Dict[str, Any],
    engine_payload: Dict[str, Any],
) -> Path:
    """Atomically write one checkpoint document; returns its path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "format": CHECKPOINT_FORMAT,
        "config": config_payload,
        "engine": engine_payload,
    }
    atomic_write_bytes(
        target, json.dumps(document, sort_keys=True).encode("utf-8")
    )
    return target


def read_checkpoint(path: os.PathLike) -> Dict[str, Any]:
    """Load and validate one checkpoint document."""
    with open(path, "r", encoding="utf-8") as stream:
        document = json.load(stream)
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {document.get('format')!r} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    return document


__all__ = ["CHECKPOINT_FORMAT", "write_checkpoint", "read_checkpoint"]
