"""The one façade over batch, streaming, replay, and sweep workloads.

A :class:`LocalizationSession` is "measurements in, censor verdicts out"
as one object: configure it with a single
:class:`~repro.api.config.SessionConfig`, pick a workload —

- :meth:`run` — one-shot batch over a fresh campaign,
- :meth:`stream` — live ingest from the platform's drip feed,
- :meth:`replay` — a stored dataset, optionally with the no-churn
  ablation,
- :meth:`replay_stored` — a sweep job rebuilt from a result store, with
  verification against the stored record,
- :meth:`sweep` — a whole job grid through the parallel runner —

or drive the incremental surface (:meth:`ingest_measurement` /
:meth:`advance` / :meth:`drain`) yourself.  All of them drain through the
session's pluggable :class:`~repro.api.backends.ExecutionBackend`; every
backend is byte-identical to ``LocalizationPipeline.run`` on drain.

Sessions checkpoint: :meth:`checkpoint` snapshots the engine state plus
the config to one file, and :meth:`restore` resumes a consumer
mid-campaign — under the same backend or a different one.

Quickstart::

    from repro.api import LocalizationSession

    session = LocalizationSession.from_preset("tiny", seed=0)
    session.subscribe(lambda event: print(event.describe()))
    outcome = session.stream()          # verdicts fire live
    print(outcome.result.identified_censor_asns)
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.observations import (
    Observation,
    build_observations,
    first_path_only,
)
from repro.core.pipeline import PipelineResult
from repro.iclab.dataset import Dataset
from repro.iclab.measurement import Measurement
from repro.obs import log as obslog
from repro.obs import recorder as obsrecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FlightRecorder
from repro.obs.spans import SpanRecorder
from repro.runner.spec import JobSpec, SweepSpec
from repro.scenario.world import World, build_world
from repro.stream.events import Subscriber
from repro.stream.state import StreamStats
from repro.util.profiling import StageTimer

from repro.api.backends import (
    BackendContext,
    ExecutionBackend,
    ShardedBackend,
    backend_for,
)
from repro.api.checkpoint import read_checkpoint, write_checkpoint
from repro.api.config import ExecutionPolicy, SessionConfig
from repro.api.placement import (
    Autoscaler,
    AutoscalePolicy,
    PartitionMap,
)

_log = obslog.get_logger("api.session")


@dataclass
class SessionOutcome:
    """One completed workload with every artifact still live."""

    config: SessionConfig
    world: World
    dataset: Dataset
    result: PipelineResult
    perf: Optional[Dict[str, Any]] = None


@dataclass
class StoredReplayOutcome:
    """A stored-job replay and how it compared to the stored record."""

    job: JobSpec
    world: World
    result: PipelineResult
    verified: Optional[bool] = None   # None: no stored result to compare
    mismatches: Sequence[str] = ()


class LocalizationSession:
    """One localization workload, any shape, behind one config."""

    def __init__(
        self,
        config: Optional[SessionConfig] = None,
        world: Optional[World] = None,
        ip2as=None,
        country_by_asn: Optional[Dict[int, str]] = None,
    ) -> None:
        self.config = config if config is not None else SessionConfig()
        self._world = world
        self._ip2as = ip2as
        self._country_by_asn = country_by_asn
        self._subscribers: List[Subscriber] = []
        self._backend: Optional[ExecutionBackend] = None
        self._pending_state: Optional[Dict[str, Any]] = None
        self._metrics: Optional[MetricsRegistry] = None
        self._spans: Optional[SpanRecorder] = None
        self._flight: Optional[FlightRecorder] = None
        self._flight_dir: Optional[str] = None
        # A world bound without an explicit config leaves self.config a
        # default that does NOT describe the world; fine for in-process
        # use, but a checkpoint written from it would restore the wrong
        # world — checkpoint() refuses in that case.
        self._config_describes_world = config is not None or world is None

    # -- construction conveniences ----------------------------------------

    @classmethod
    def from_preset(
        cls, preset: str, seed: int = 0, **overrides
    ) -> "LocalizationSession":
        """A session over a named scenario preset.

        Keyword overrides set any :class:`SessionConfig` field; pass
        ``execution=ExecutionPolicy(backend="sharded", shards=4)`` to
        pick a backend.
        """
        return cls(SessionConfig(preset=preset, seed=seed, **overrides))

    @classmethod
    def for_world(
        cls, world: World, config: Optional[SessionConfig] = None
    ) -> "LocalizationSession":
        """Bind a session to an already-built world (skips the rebuild).

        Pass a ``config`` that describes the world when you intend to
        :meth:`checkpoint` — the checkpointed config is what regenerates
        the world (and its IP-to-AS database) at restore time, and a
        defaulted config could not.
        """
        return cls(config, world=world)

    # -- lazily bound substrate -------------------------------------------

    @property
    def world(self) -> World:
        """The session's world, built deterministically on first use."""
        if self._world is None:
            self._world = build_world(self.config.scenario_config())
        return self._world

    @property
    def ip2as(self):
        return self._ip2as if self._ip2as is not None else self.world.ip2as

    @property
    def country_by_asn(self) -> Dict[int, str]:
        if self._country_by_asn is not None:
            return self._country_by_asn
        return self.world.country_by_asn

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend, created on first use.

        Creation is deferred so :meth:`subscribe` and :meth:`restore`
        can run first — backends bind their event plumbing (and, for the
        sharded backend, fork their workers) at creation time.
        """
        if self._backend is None:
            self._backend = backend_for(
                BackendContext(
                    config=self.config,
                    ip2as=self.ip2as,
                    country_by_asn=self.country_by_asn,
                    subscribers=self._subscribers,
                    metrics=self._metrics,
                    spans=self._spans,
                    flight=self._flight,
                    flight_dir=self._flight_dir,
                )
            )
            if self._pending_state is not None:
                self._backend.restore(self._pending_state)
                self._pending_state = None
        return self._backend

    # -- events ------------------------------------------------------------

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a callback for every verdict-delta event.

        Subscribe before the first workload/ingestion: backends decide at
        creation time whether per-event verdicts are computed at all (and
        whether shard workers ship them back).
        """
        if self._backend is not None and not self._subscribers:
            raise RuntimeError(
                "subscribe() must precede backend creation — the first "
                "workload, ingestion, or checkpoint() call on this "
                "session already bound its event plumbing without "
                "subscribers"
            )
        self._subscribers.append(subscriber)

    # -- observability -----------------------------------------------------

    def enable_metrics(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Attach a metrics registry to this session's backend.

        Like :meth:`subscribe`, this must precede backend creation: the
        backend wires its instrumentation (and, for the sharded backend,
        tells its workers to build registries and ack chunks) when it is
        built.  Returns the registry so callers can hand it to
        :func:`repro.obs.export.start_metrics_server` or snapshot it.
        Telemetry only — enabling metrics never changes any result.
        """
        if self._backend is not None and self._metrics is None:
            raise RuntimeError(
                "enable_metrics() must precede backend creation — the "
                "first workload, ingestion, or checkpoint() call on "
                "this session already bound its backend without "
                "instrumentation"
            )
        if registry is None:
            registry = MetricsRegistry()
        self._metrics = registry
        return registry

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The registry from :meth:`enable_metrics`, or None."""
        return self._metrics

    def _require_unbound(self, what: str) -> None:
        if self._backend is not None:
            raise RuntimeError(
                f"{what} must precede backend creation — the first "
                "workload, ingestion, or checkpoint() call on this "
                "session already bound its backend"
            )

    def enable_tracing(
        self, recorder: Optional[SpanRecorder] = None
    ) -> SpanRecorder:
        """Attach a span recorder: real intervals, per track, exportable.

        Like :meth:`enable_metrics`, must precede backend creation.
        When metrics are already enabled the recorder shares the
        registry's clock, so one injected ``FakeClock`` governs
        histograms and spans together (call :meth:`enable_metrics`
        first for that).  Telemetry only — results never change.
        """
        self._require_unbound("enable_tracing()")
        if recorder is None:
            clock = (
                self._metrics.clock if self._metrics is not None else None
            )
            recorder = SpanRecorder(clock=clock)
        self._spans = recorder
        return recorder

    @property
    def spans(self) -> Optional[SpanRecorder]:
        """The recorder from :meth:`enable_tracing`, or None."""
        return self._spans

    def export_trace(self, path: str) -> int:
        """Write the run's spans as Chrome ``trace_event`` JSON.

        Load the file at ``chrome://tracing`` or ``ui.perfetto.dev``.
        Returns the span count.  Call after :meth:`drain` — a sharded
        backend ships worker spans home inside the drain telemetry.
        """
        if self._spans is None:
            raise RuntimeError(
                "tracing is not enabled — call enable_tracing() before "
                "the first workload"
            )
        count = self._spans.export(path)
        _log.info(
            "trace.export", extra=obslog.fields(path=str(path), spans=count)
        )
        return count

    def enable_flight_recorder(
        self,
        directory: Optional[str] = None,
        capacity: int = obsrecorder.DEFAULT_CAPACITY,
    ) -> FlightRecorder:
        """Arm the crash flight recorder for this process.

        A bounded ring of recent wire-frame headers, log records, and
        metric deltas, installed process-wide (the transport hooks and
        the log plane find it without plumbing).  The parent dumps it
        to ``directory`` (default ``.flight-recorder``) on worker death;
        shard workers arm their own ring and dump on unhandled engine
        exceptions.  Must precede backend creation.
        """
        self._require_unbound("enable_flight_recorder()")
        recorder = FlightRecorder(capacity=capacity)
        self._flight = recorder
        self._flight_dir = (
            directory if directory is not None else ".flight-recorder"
        )
        obsrecorder.install(recorder)
        return recorder

    @property
    def flight_recorder(self) -> Optional[FlightRecorder]:
        """The recorder from :meth:`enable_flight_recorder`, or None."""
        return self._flight

    # -- one-shot workloads ------------------------------------------------

    def run(self, timer: Optional[StageTimer] = None) -> SessionOutcome:
        """One-shot batch: build the world, run its campaign, localize.

        Honors the config's churn ablation switch.  On the inline
        backend with no subscribers this is the reference
        ``LocalizationPipeline`` fast path (no stream stats or events);
        with subscribers — or on the sharded backend — the same
        observations stream through the engine(s) instead, so verdict
        events fire and :attr:`stats`/:attr:`identifications` populate.
        Byte-identical result every way.
        """
        if timer is None:
            timer = StageTimer()
        started = time.perf_counter()
        with timer.stage("world.build"):
            world = self.world
        world.oracle.timer = timer
        world.platform.timer = timer
        with timer.stage("campaign"):
            dataset = world.run_campaign()
        with timer.stage("pipeline"):
            result = self.backend.run_dataset(
                dataset,
                without_churn=self.config.without_churn,
                timer=timer,
            )
        timer.add("job.total", time.perf_counter() - started)
        for name, value in world.oracle.routes.stats.as_dict().items():
            timer.count(f"routing.{name}", value)
        return SessionOutcome(
            config=self.config,
            world=world,
            dataset=dataset,
            result=result,
            perf=timer.snapshot(),
        )

    def stream(self, progress_every: int = 0) -> SessionOutcome:
        """Live ingest: run the campaign while drip-feeding the backend.

        Every measurement flows into the backend the moment the platform
        produces it; subscribers see verdicts tighten in real time.  The
        no-churn ablation is replay-only (its path filter needs the whole
        dataset up front) — use :meth:`replay` for it.
        """
        if self.config.without_churn:
            raise ValueError(
                "the no-churn ablation is replay-only; use replay()"
            )
        world = self.world
        backend = self.backend
        _log.info(
            "session.stream.start",
            extra=obslog.fields(
                preset=self.config.preset,
                seed=self.config.seed,
                backend=self.config.execution.backend,
                shards=self.config.execution.shards,
            ),
        )
        world.platform.add_listener(backend.ingest_measurement)
        try:
            dataset = world.platform.run_campaign(
                progress_every=progress_every
            )
        finally:
            world.platform.remove_listener(backend.ingest_measurement)
        result = self.drain()
        return SessionOutcome(
            config=self.config, world=world, dataset=dataset, result=result
        )

    def replay(
        self, dataset: Dataset, without_churn: Optional[bool] = None
    ) -> PipelineResult:
        """Replay a stored dataset in recorded order and drain.

        ``without_churn`` defaults to the config's churn switch; when set,
        the Figure-4 first-distinct-path filter applies before ingestion
        — the exact sequence ``LocalizationPipeline.run_without_churn``
        solves.
        """
        ablate = (
            self.config.without_churn
            if without_churn is None
            else without_churn
        )
        backend = self.backend
        if ablate:
            observations, stats = build_observations(
                dataset,
                self.ip2as,
                anomalies=self.config.pipeline_config().anomalies,
            )
            backend.merge_discard_stats(stats)
            for observation in first_path_only(observations):
                backend.ingest_observation(observation)
        else:
            for measurement in dataset:
                backend.ingest_measurement(measurement)
        return self.drain()

    def replay_stored(
        self,
        store,
        job: Optional[JobSpec] = None,
        progress_every: int = 0,
    ):
        """Rebuild a stored job's campaign, stream it, verify the drain.

        The scenario regenerates deterministically from the job spec;
        when the store holds the job's result sidecar, the drained result
        is checked against the stored per-problem statuses and censors.
        """
        from repro.stream.sources import compare_with_stored

        if job is None:
            job = self.config.job_spec()
        world = self.world
        if job.without_churn:
            dataset = world.run_campaign(progress_every=progress_every)
            result = self.replay(dataset, without_churn=True)
        else:
            result = self.stream(progress_every=progress_every).result
        stored = store.get_result(job.job_id)
        if stored is None:
            return StoredReplayOutcome(job=job, world=world, result=result)
        mismatches = compare_with_stored(result, stored)
        return StoredReplayOutcome(
            job=job,
            world=world,
            result=result,
            verified=not mismatches,
            mismatches=tuple(mismatches),
        )

    def sweep(
        self,
        spec: Optional[SweepSpec] = None,
        jobs: Optional[Sequence[JobSpec]] = None,
        store=None,
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        progress=None,
    ):
        """Run a job grid through the parallel sweep runner.

        Worker count and per-job timeout default to the session's
        execution policy.  Returns the runner's
        :class:`~repro.runner.executor.SweepReport`.
        """
        # Deferred: the executor imports this module for run_job.
        from repro.runner.executor import run_sweep

        if jobs is None:
            if spec is None:
                raise ValueError("sweep() needs a spec or a job list")
            jobs = spec.expand()
        return run_sweep(
            jobs,
            store=store,
            workers=(
                workers
                if workers is not None
                else self.config.execution.workers
            ),
            timeout=(
                timeout
                if timeout is not None
                else self.config.execution.timeout
            ),
            progress=progress,
        )

    # -- incremental surface -----------------------------------------------

    def ingest_measurement(self, measurement: Measurement) -> None:
        """Convert one measurement and ingest its observations."""
        self.backend.ingest_measurement(measurement)

    def ingest_observation(self, observation: Observation) -> None:
        """Ingest one pre-converted observation."""
        self.backend.ingest_observation(observation)

    def advance(self, timestamp: int) -> None:
        """Push the stream watermark forward without an observation."""
        self.backend.advance(timestamp)

    def drain(self) -> PipelineResult:
        """Close every window and assemble the final result."""
        if self._spans is not None:
            with self._spans.span("session.drain", category="session"):
                result = self.backend.drain()
        else:
            result = self.backend.drain()
        _log.info(
            "session.drain",
            extra=obslog.fields(
                problems=len(result.solutions),
                censors=len(result.identified_censor_asns),
            ),
        )
        return result

    # -- elastic sharding --------------------------------------------------

    def _sharded_backend(self, what: str) -> ShardedBackend:
        if not self.config.execution.rebalance:
            raise RuntimeError(
                f"{what} is disabled by the execution policy "
                "(ExecutionPolicy.rebalance=False)"
            )
        backend = self.backend
        if not isinstance(backend, ShardedBackend):
            raise RuntimeError(
                f"{what} needs the sharded backend; this session runs "
                f"execution.backend={self.config.execution.backend!r}"
            )
        return backend

    @property
    def placement(self) -> Optional[PartitionMap]:
        """The live routing map (sharded backend only; None otherwise)."""
        backend = self._backend
        if isinstance(backend, ShardedBackend):
            return backend.placement
        return None

    def rebalance(
        self,
        new_map: Optional[PartitionMap] = None,
        overrides: Optional[Dict] = None,
    ) -> Dict[str, Any]:
        """Live-migrate the sharded fleet to a new placement mid-stream.

        Pass a full :class:`PartitionMap`, or just ``overrides``
        (``{(url, anomaly_value): shard}``; ``None`` values unpin) for a
        hot-bucket migration on the current layout.  Only the moving
        buckets quiesce; the drain stays byte-identical to an
        uninterrupted run.  Returns the commit summary (epoch, shard
        count, moved bucket count, seconds).
        """
        backend = self._sharded_backend("rebalance()")
        if new_map is None:
            if overrides is None:
                raise ValueError(
                    "rebalance() needs a new_map or overrides"
                )
            new_map = backend.placement.with_overrides(overrides)
        return backend.rebalance(new_map)

    def add_shard(self) -> Dict[str, Any]:
        """Grow the sharded fleet by one worker, live."""
        return self._sharded_backend("add_shard()").add_shard()

    def remove_shard(self) -> Dict[str, Any]:
        """Shrink the sharded fleet by one worker, live."""
        return self._sharded_backend("remove_shard()").remove_shard()

    def autoscaler(
        self,
        policy: Optional[AutoscalePolicy] = None,
        signals=None,
        clock=time.monotonic,
    ) -> Autoscaler:
        """An :class:`Autoscaler` bound to this session.

        ``policy`` defaults to the execution policy's ``autoscale``
        block; the caller owns the polling cadence (call ``poll()``
        from whatever loop already owns the session — serve tenants do
        this per applied message).
        """
        if policy is None:
            policy = self.config.execution.autoscale
        return Autoscaler(self, policy, signals=signals, clock=clock)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, path: os.PathLike) -> os.PathLike:
        """Snapshot config + engine state to ``path`` (atomic write).

        The session stays live — checkpointing is a read — so periodic
        checkpoints during a long campaign are one call in the ingest
        loop.
        """
        if not self._config_describes_world:
            raise ValueError(
                "this session was bound to an existing world without a "
                "SessionConfig; restore() would rebuild a different "
                "world from the default config — pass the world's "
                "config to for_world()/world.session() before "
                "checkpointing"
            )
        if self._spans is not None:
            with self._spans.span(
                "checkpoint.write", category="session", path=str(path)
            ):
                written = write_checkpoint(
                    path, self.config.to_dict(), self.backend.state()
                )
        else:
            written = write_checkpoint(
                path, self.config.to_dict(), self.backend.state()
            )
        _log.info(
            "checkpoint.write", extra=obslog.fields(path=str(path))
        )
        return written

    @classmethod
    def restore(
        cls,
        path: os.PathLike,
        execution: Optional[ExecutionPolicy] = None,
        world: Optional[World] = None,
    ) -> "LocalizationSession":
        """Resume a checkpointed session mid-campaign.

        The world rebuilds deterministically from the checkpointed
        config (pass ``world`` to skip the rebuild when you already have
        it).  ``execution`` overrides the checkpointed policy — restoring
        an inline checkpoint under the sharded backend (or vice versa, or
        under a different shard count) is supported because the state
        format is backend-agnostic.
        """
        document = read_checkpoint(path)
        session = cls.restore_document(
            document, execution=execution, world=world
        )
        _log.info(
            "checkpoint.restore",
            extra=obslog.fields(
                path=str(path),
                preset=session.config.preset,
                backend=session.config.execution.backend,
            ),
        )
        return session

    @classmethod
    def restore_document(
        cls,
        document: Dict[str, Any],
        execution: Optional[ExecutionPolicy] = None,
        world: Optional[World] = None,
    ) -> "LocalizationSession":
        """:meth:`restore` from an already-loaded checkpoint document.

        The serve daemon embeds checkpoint documents inside its own
        per-tenant state files (which carry extra resume bookkeeping),
        so it loads the JSON itself and resumes tenants through here.
        """
        config = SessionConfig.from_dict(document["config"])
        if execution is not None:
            config = dataclasses.replace(config, execution=execution)
        session = cls(config, world=world)
        session._pending_state = document["engine"]
        return session

    # -- lifecycle / reporting ---------------------------------------------

    def close(self) -> None:
        """Release backend resources (sharded worker processes)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "LocalizationSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def stats(self) -> StreamStats:
        """Stream counters (merged across shards after a sharded drain)."""
        if self._backend is None:
            return StreamStats()
        return self._backend.stats

    @property
    def identifications(self) -> List:
        """Confirmed-censor log — feed to ``TimeToLocalization``.

        Duck-compatible with the engine (``identifications`` + ``stats``)
        so ``TimeToLocalization.from_engine(session)`` works unchanged.
        """
        if self._backend is None:
            return []
        return self._backend.identifications

    @property
    def solve_stats(self):
        """Solve-cache counters: live on inline, merged-at-drain on
        sharded (None until the sharded drain ships them back)."""
        return getattr(self._backend, "solve_stats", None)


__all__ = [
    "LocalizationSession",
    "SessionOutcome",
    "StoredReplayOutcome",
]
