"""One typed configuration for one localization session.

Before :mod:`repro.api`, a run's knobs were split across three objects —
:class:`~repro.scenario.config.ScenarioConfig` (the world),
:class:`~repro.core.pipeline.PipelineConfig` (the solve), and
:class:`~repro.runner.spec.JobSpec` (the JSON-friendly union of both the
sweep runner ships to workers).  :class:`SessionConfig` subsumes the
split: scenario preset + overrides, pipeline knobs, and — new — the
*execution policy* (which backend runs the work, how many shards, sweep
parallelism), all in primitives, so a session is content-addressable and
reconstructible in a worker process or from a checkpoint file exactly
like a job spec is.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.core.pipeline import PipelineConfig
from repro.core.problem import DEFAULT_SOLUTION_CAP
from repro.runner.spec import WITH_CHURN, JobSpec
from repro.scenario.config import ScenarioConfig
from repro.stream.engine import LATE_ERROR, LATE_REOPEN

BACKEND_INLINE = "inline"
BACKEND_SHARDED = "sharded"
BACKENDS = (BACKEND_INLINE, BACKEND_SHARDED)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a session's work is executed — orthogonal to *what* runs.

    ``backend`` picks the drain path: ``inline`` keeps today's
    single-threaded engine/pipeline; ``sharded`` partitions open windows
    across ``shards`` worker processes by the bucket key.  ``workers`` /
    ``timeout`` govern sweep fan-out (per-job processes), exactly as the
    runner CLI's flags did.
    """

    backend: str = BACKEND_INLINE
    shards: int = 2
    chunk_size: int = 256          # observations per worker message
    workers: int = 1               # sweep: concurrent job processes
    timeout: Optional[float] = None  # sweep: per-job seconds
    late_policy: str = LATE_REOPEN

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.late_policy not in (LATE_REOPEN, LATE_ERROR):
            raise ValueError(f"unknown late policy: {self.late_policy!r}")

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecutionPolicy":
        return cls(**payload)


@dataclass(frozen=True)
class SessionConfig:
    """Everything one :class:`~repro.api.session.LocalizationSession` needs.

    The scenario/pipeline fields mirror :class:`JobSpec` one-for-one
    (``None`` overrides mean "use the preset's value"), plus the
    pipeline's ``optimized`` switch and the :class:`ExecutionPolicy`.
    Validation is delegated to the ``JobSpec`` built in ``__post_init__``,
    so the two surfaces can never drift on what a legal workload is.
    """

    preset: str = "small"
    seed: int = 0
    churn: str = WITH_CHURN
    granularities: Tuple[str, ...] = ("day", "week", "month")
    anomalies: Tuple[str, ...] = ()  # () → the five ICLab anomalies
    solution_cap: int = DEFAULT_SOLUTION_CAP
    skip_anomaly_free: bool = False
    optimized: bool = True
    # scenario overrides
    duration_days: Optional[int] = None
    num_urls: Optional[int] = None
    num_vantage_points: Optional[int] = None
    tests_per_url_per_day: Optional[float] = None
    schedule: Optional[str] = None
    sweeps_per_pair_per_day: Optional[float] = None
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    _JOB_FIELDS = (
        "preset",
        "seed",
        "churn",
        "granularities",
        "anomalies",
        "solution_cap",
        "skip_anomaly_free",
        "duration_days",
        "num_urls",
        "num_vantage_points",
        "tests_per_url_per_day",
        "schedule",
        "sweeps_per_pair_per_day",
    )

    def __post_init__(self) -> None:
        self.job_spec()  # raises on any illegal scenario/pipeline knob

    # -- conversions ------------------------------------------------------

    def job_spec(self) -> JobSpec:
        """The equivalent runner job (execution policy stripped)."""
        return JobSpec(
            **{name: getattr(self, name) for name in self._JOB_FIELDS}
        )

    @classmethod
    def from_job(
        cls, job: JobSpec, execution: Optional[ExecutionPolicy] = None
    ) -> "SessionConfig":
        """Wrap an existing job spec, optionally with an execution policy."""
        kwargs = {name: getattr(job, name) for name in cls._JOB_FIELDS}
        if execution is not None:
            kwargs["execution"] = execution
        return cls(**kwargs)

    def scenario_config(self) -> ScenarioConfig:
        """The preset scenario with this session's overrides applied."""
        return self.job_spec().scenario_config()

    def pipeline_config(self) -> PipelineConfig:
        """The solve knobs, including the ``optimized`` switch."""
        return dataclasses.replace(
            self.job_spec().pipeline_config(), optimized=self.optimized
        )

    @property
    def without_churn(self) -> bool:
        """Whether this session applies the Figure-4 no-churn ablation."""
        return self.job_spec().without_churn

    # -- wire form --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (tuples become lists), round-trippable."""
        out: Dict[str, Any] = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if config_field.name == "execution":
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            out[config_field.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionConfig":
        kwargs = dict(payload)
        for key in ("granularities", "anomalies"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        if "execution" in kwargs:
            kwargs["execution"] = ExecutionPolicy.from_dict(
                kwargs["execution"]
            )
        return cls(**kwargs)


__all__ = [
    "BACKENDS",
    "BACKEND_INLINE",
    "BACKEND_SHARDED",
    "ExecutionPolicy",
    "SessionConfig",
]
