"""One typed configuration for one localization session.

Before :mod:`repro.api`, a run's knobs were split across three objects —
:class:`~repro.scenario.config.ScenarioConfig` (the world),
:class:`~repro.core.pipeline.PipelineConfig` (the solve), and
:class:`~repro.runner.spec.JobSpec` (the JSON-friendly union of both the
sweep runner ships to workers).  :class:`SessionConfig` subsumes the
split: scenario preset + overrides, pipeline knobs, and — new — the
*execution policy* (which backend runs the work, how many shards, sweep
parallelism), all in primitives, so a session is content-addressable and
reconstructible in a worker process or from a checkpoint file exactly
like a job spec is.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

from repro.core.pipeline import PipelineConfig
from repro.core.problem import DEFAULT_SOLUTION_CAP
from repro.runner.spec import WITH_CHURN, JobSpec
from repro.scenario.config import ScenarioConfig
from repro.stream.engine import LATE_ERROR, LATE_REOPEN

from repro.api.placement import AutoscalePolicy

BACKEND_INLINE = "inline"
BACKEND_SHARDED = "sharded"
BACKENDS = (BACKEND_INLINE, BACKEND_SHARDED)

TRANSPORT_PIPE = "pipe"
TRANSPORT_SOCKET = "socket"
TRANSPORTS = (TRANSPORT_PIPE, TRANSPORT_SOCKET)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a session's work is executed — orthogonal to *what* runs.

    ``backend`` picks the drain path: ``inline`` keeps today's
    single-threaded engine/pipeline; ``sharded`` partitions open windows
    across ``shards`` worker processes by the bucket key.  ``workers`` /
    ``timeout`` govern sweep fan-out (per-job processes), exactly as the
    runner CLI's flags did.

    ``transport`` picks how shard frames travel: ``pipe`` forks local
    workers over multiprocessing pipes; ``socket`` runs the same wire
    protocol over TCP.  With ``socket`` and no ``shard_hosts``, the
    parent binds ephemeral localhost ports and spawns its own connecting
    workers (same-host TCP — the smoke-testable shape).  With
    ``shard_hosts`` (one ``host:port`` *listen* address per shard), the
    parent binds those addresses and waits ``connect_timeout`` seconds
    for external ``repro-runner shard-worker --connect`` processes.

    ``rebalance`` gates live placement changes on the sharded backend:
    ``session.rebalance()`` / ``add_shard()`` / ``remove_shard()`` and
    the autoscaler all refuse when it is off, so a deployment can pin a
    static layout.  ``autoscale`` is the :class:`AutoscalePolicy` the
    session (or serve tenant) polls — disabled by default; enabling it
    only has an effect on the sharded backend.

    ``recovery`` keeps a dead shard from failing the stream: the parent
    respawns (pipe) or re-accepts (socket) the worker and rebuilds it
    from its last checkpoint slice plus a frame-replay log.
    ``shard_checkpoint_every`` bounds that log by snapshotting each
    shard's engine state every N chunks (0 = never snapshot: recovery
    replays from the stream's start, or from the last session-level
    restore/checkpoint).  The default-0 log retains one compact encoded
    copy of every chunk sent — a small fraction of the observation
    groups the parent already holds for the merged drain, but on very
    long campaigns set a snapshot cadence (each snapshot costs one
    full engine-state export for that shard) or checkpoint the session
    periodically, either of which truncates the log.
    """

    backend: str = BACKEND_INLINE
    shards: int = 2
    chunk_size: int = 256          # observations per worker message
    workers: int = 1               # sweep: concurrent job processes
    timeout: Optional[float] = None  # sweep: per-job seconds
    late_policy: str = LATE_REOPEN
    transport: str = TRANSPORT_PIPE
    shard_hosts: Tuple[str, ...] = ()  # socket: per-shard listen addresses
    connect_timeout: float = 30.0      # socket: accept/reconnect seconds
    recovery: bool = True              # respawn dead shards from checkpoints
    shard_checkpoint_every: int = 0    # chunks between recovery snapshots
    rebalance: bool = True             # allow live placement changes
    autoscale: AutoscalePolicy = field(default_factory=AutoscalePolicy)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.late_policy not in (LATE_REOPEN, LATE_ERROR):
            raise ValueError(f"unknown late policy: {self.late_policy!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"transport must be one of {TRANSPORTS}, got "
                f"{self.transport!r}"
            )
        if self.shard_hosts:
            if self.transport != TRANSPORT_SOCKET:
                raise ValueError(
                    "shard_hosts requires transport='socket'"
                )
            if len(self.shard_hosts) != self.shards:
                raise ValueError(
                    f"shard_hosts needs one listen address per shard "
                    f"({self.shards}), got {len(self.shard_hosts)}"
                )
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if self.shard_checkpoint_every < 0:
            raise ValueError("shard_checkpoint_every must be >= 0")
        if self.autoscale.enabled and not self.rebalance:
            raise ValueError(
                "autoscale needs rebalance=True — an autoscaler that "
                "cannot move buckets has nothing to do"
            )
        if self.autoscale.enabled and self.shard_hosts:
            raise ValueError(
                "autoscale cannot grow a fixed shard_hosts fleet; drop "
                "shard_hosts (self-spawned workers) or disable autoscale"
            )

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)   # recurses into autoscale
        payload["shard_hosts"] = list(self.shard_hosts)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExecutionPolicy":
        kwargs = dict(payload)
        if "shard_hosts" in kwargs:
            kwargs["shard_hosts"] = tuple(kwargs["shard_hosts"])
        if isinstance(kwargs.get("autoscale"), dict):
            kwargs["autoscale"] = AutoscalePolicy.from_dict(
                kwargs["autoscale"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class SessionConfig:
    """Everything one :class:`~repro.api.session.LocalizationSession` needs.

    The scenario/pipeline fields mirror :class:`JobSpec` one-for-one
    (``None`` overrides mean "use the preset's value"), plus the
    pipeline's ``optimized`` switch and the :class:`ExecutionPolicy`.
    Validation is delegated to the ``JobSpec`` built in ``__post_init__``,
    so the two surfaces can never drift on what a legal workload is.
    """

    preset: str = "small"
    seed: int = 0
    churn: str = WITH_CHURN
    granularities: Tuple[str, ...] = ("day", "week", "month")
    anomalies: Tuple[str, ...] = ()  # () → the five ICLab anomalies
    solution_cap: int = DEFAULT_SOLUTION_CAP
    skip_anomaly_free: bool = False
    optimized: bool = True
    # scenario overrides
    duration_days: Optional[int] = None
    num_urls: Optional[int] = None
    num_vantage_points: Optional[int] = None
    tests_per_url_per_day: Optional[float] = None
    schedule: Optional[str] = None
    sweeps_per_pair_per_day: Optional[float] = None
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)

    _JOB_FIELDS = (
        "preset",
        "seed",
        "churn",
        "granularities",
        "anomalies",
        "solution_cap",
        "skip_anomaly_free",
        "duration_days",
        "num_urls",
        "num_vantage_points",
        "tests_per_url_per_day",
        "schedule",
        "sweeps_per_pair_per_day",
    )

    def __post_init__(self) -> None:
        self.job_spec()  # raises on any illegal scenario/pipeline knob

    # -- conversions ------------------------------------------------------

    def job_spec(self) -> JobSpec:
        """The equivalent runner job (execution policy stripped)."""
        return JobSpec(
            **{name: getattr(self, name) for name in self._JOB_FIELDS}
        )

    @classmethod
    def from_job(
        cls, job: JobSpec, execution: Optional[ExecutionPolicy] = None
    ) -> "SessionConfig":
        """Wrap an existing job spec, optionally with an execution policy."""
        kwargs = {name: getattr(job, name) for name in cls._JOB_FIELDS}
        if execution is not None:
            kwargs["execution"] = execution
        return cls(**kwargs)

    def scenario_config(self) -> ScenarioConfig:
        """The preset scenario with this session's overrides applied."""
        return self.job_spec().scenario_config()

    def pipeline_config(self) -> PipelineConfig:
        """The solve knobs, including the ``optimized`` switch."""
        return dataclasses.replace(
            self.job_spec().pipeline_config(), optimized=self.optimized
        )

    @property
    def without_churn(self) -> bool:
        """Whether this session applies the Figure-4 no-churn ablation."""
        return self.job_spec().without_churn

    # -- wire form --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (tuples become lists), round-trippable."""
        out: Dict[str, Any] = {}
        for config_field in fields(self):
            value = getattr(self, config_field.name)
            if config_field.name == "execution":
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            out[config_field.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SessionConfig":
        kwargs = dict(payload)
        for key in ("granularities", "anomalies"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        if "execution" in kwargs:
            kwargs["execution"] = ExecutionPolicy.from_dict(
                kwargs["execution"]
            )
        return cls(**kwargs)


__all__ = [
    "BACKENDS",
    "BACKEND_INLINE",
    "BACKEND_SHARDED",
    "TRANSPORTS",
    "TRANSPORT_PIPE",
    "TRANSPORT_SOCKET",
    "AutoscalePolicy",
    "ExecutionPolicy",
    "SessionConfig",
]
