"""repro.api — one session façade over batch, streaming, and sweeps.

The paper's pipeline is one logical operation — measurements in,
per-(URL, anomaly, window) censor verdicts out.  This package is its one
front door: a :class:`LocalizationSession` configured by a single typed
:class:`SessionConfig` (scenario preset + overrides, pipeline knobs, and
execution policy) runs any workload — one-shot batch, live ingest,
dataset or stored-job replay, or a whole sweep grid — through a pluggable
:class:`ExecutionBackend`:

- :class:`InlineBackend` — the current single-threaded paths;
- :class:`ShardedBackend` — open windows partitioned across worker
  processes by the bucket key, verdict events merged into one ordered
  subscriber stream, shard results merged into one
  :class:`~repro.core.pipeline.PipelineResult`.

Every backend drains byte-identical to ``LocalizationPipeline.run``
(pinned on the tiny and small presets in ``tests/test_api.py``), and
every session can :meth:`~LocalizationSession.checkpoint` its engine
state — ledgers, propagation closures, watermark — to a file from which
:meth:`LocalizationSession.restore` resumes mid-campaign, under the same
backend or a different one.

Quickstart::

    from repro.api import ExecutionPolicy, LocalizationSession

    session = LocalizationSession.from_preset(
        "small",
        seed=0,
        execution=ExecutionPolicy(backend="sharded", shards=4),
    )
    outcome = session.run()             # == LocalizationPipeline.run
    print(outcome.result.identified_censor_asns)
"""

from repro.api.backends import (
    BackendContext,
    BackendError,
    ExecutionBackend,
    InlineBackend,
    ShardedBackend,
    backend_for,
    shard_of,
)
from repro.api.checkpoint import (
    CHECKPOINT_FORMAT,
    read_checkpoint,
    write_checkpoint,
)
from repro.api.config import (
    BACKENDS,
    TRANSPORTS,
    ExecutionPolicy,
    SessionConfig,
)
from repro.api.placement import (
    Autoscaler,
    AutoscalePolicy,
    PartitionMap,
    bucket_hash,
)
from repro.api.session import (
    LocalizationSession,
    SessionOutcome,
    StoredReplayOutcome,
)

__all__ = [
    "LocalizationSession",
    "SessionConfig",
    "ExecutionPolicy",
    "SessionOutcome",
    "StoredReplayOutcome",
    "ExecutionBackend",
    "InlineBackend",
    "ShardedBackend",
    "BackendContext",
    "BackendError",
    "backend_for",
    "shard_of",
    "PartitionMap",
    "Autoscaler",
    "AutoscalePolicy",
    "bucket_hash",
    "BACKENDS",
    "TRANSPORTS",
    "CHECKPOINT_FORMAT",
    "read_checkpoint",
    "write_checkpoint",
]
