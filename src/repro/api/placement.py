"""Explicit shard placement: the versioned bucket-key → shard map.

Before this module, shard assignment was a bare ``crc32(pair) % shards``
frozen into every routing, restore, and recovery path of the sharded
backend — correct, but rigid: hot (URL, anomaly) pairs skew one worker,
and the shard count is fixed for a campaign's whole life.  A
:class:`PartitionMap` lifts placement into data:

- **Consistent-hash ring by default.**  Each shard owns ``vnodes``
  pseudo-random points on a 32-bit ring; a pair lands on the first point
  clockwise of its content hash.  Growing N → N+1 shards moves only the
  pairs whose nearest point changed (~1/(N+1) of them), unlike the
  modulo layout which reshuffles almost everything — the property that
  makes live rebalance cheap.
- **Load-measured overrides.**  A ``{pair: shard}`` override table sits
  above the ring, so an operator (or the autoscaler) can migrate one hot
  bucket without touching anything else.
- **Epochs.**  Every derived map bumps ``epoch``; the rebalance protocol
  (wire format 4) carries the epoch on every frame so a worker can never
  confuse two overlapping migrations, and ``/statusz`` can show which
  placement generation is live.

The pair hash is exactly the digest :func:`shard_of` has always used —
``shard_of`` survives only as this module's seed (and the degenerate
modulo layout it implies is gone from every call site).

Placement is pure data: the map never talks to workers.  The sharded
backend owns the migration (extract slices, transfer, commit) and the
:class:`Autoscaler` below decides *when* — watching the per-shard
ingest-lag/queue-depth signals behind PR 6's gauges and calling
``session.add_shard()`` / ``remove_shard()`` under min/max bounds and a
cooldown.
"""

from __future__ import annotations

import bisect
import time
import zlib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

# One (URL, anomaly value) routing key — all granularities co-locate.
Pair = Tuple[str, str]

# Ring points per shard.  64 keeps the max/min pair-count ratio tight
# (≲1.3 at a few hundred pairs) while ring construction stays trivial.
DEFAULT_VNODES = 64

PLACEMENT_FORMAT = 1


def bucket_hash(url: str, anomaly_value: str) -> int:
    """The stable 32-bit content hash of one (URL, anomaly) pair.

    This is the digest ``shard_of`` has always taken modulo the shard
    count; the ring reuses it as the key's position, so placement stays
    identical in every process and every run (never Python's randomized
    ``hash``).
    """
    return zlib.crc32(f"{anomaly_value}|{url}".encode("utf-8"))


def shard_of(url: str, anomaly_value: str, shards: int) -> int:
    """The legacy static layout: content hash modulo shard count.

    Survives only as the :class:`PartitionMap` seed — nothing routes
    through it directly anymore.
    """
    return bucket_hash(url, anomaly_value) % shards


class PartitionMap:
    """A versioned, immutable bucket-key → shard assignment.

    Derive new maps with :meth:`with_shards` / :meth:`with_overrides`
    (each bumps the epoch); equality of placement decisions between two
    maps is what the backend's rebalance diffs, via :meth:`moved_pairs`.
    """

    __slots__ = ("shards", "epoch", "overrides", "vnodes", "_points")

    def __init__(
        self,
        shards: int,
        epoch: int = 1,
        overrides: Optional[Dict[Pair, int]] = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if shards < 1:
            raise ValueError("a partition map needs at least one shard")
        if epoch < 1:
            raise ValueError("placement epochs start at 1")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.shards = shards
        self.epoch = epoch
        self.vnodes = vnodes
        overrides = dict(overrides) if overrides else {}
        for pair, shard in overrides.items():
            if not 0 <= shard < shards:
                raise ValueError(
                    f"override {pair!r} → {shard} is outside shards "
                    f"0..{shards - 1}"
                )
        self.overrides = overrides
        # The ring: sorted (point, shard) with deterministic point
        # hashes.  Built once — maps are immutable.
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for vnode in range(vnodes):
                point = zlib.crc32(f"shard:{shard}#{vnode}".encode())
                points.append((point, shard))
        points.sort()
        self._points = points

    # -- lookups -----------------------------------------------------------

    def shard_for(self, url: str, anomaly_value: str) -> int:
        """The worker owning every window of one (URL, anomaly) pair."""
        override = self.overrides.get((url, anomaly_value))
        if override is not None:
            return override
        return self._ring_shard(bucket_hash(url, anomaly_value))

    def _ring_shard(self, key_hash: int) -> int:
        points = self._points
        index = bisect.bisect_right(points, (key_hash, self.shards))
        if index == len(points):
            index = 0                   # wrap: past the last point
        return points[index][1]

    def assignments(self, pairs: Iterable[Pair]) -> Dict[Pair, int]:
        """Each pair's owner under this map."""
        return {pair: self.shard_for(*pair) for pair in pairs}

    def bucket_counts(self, pairs: Iterable[Pair]) -> List[int]:
        """How many of ``pairs`` each shard owns (index = shard)."""
        counts = [0] * self.shards
        for pair in pairs:
            counts[self.shard_for(*pair)] += 1
        return counts

    def moved_pairs(
        self, new_map: "PartitionMap", pairs: Iterable[Pair]
    ) -> Dict[Pair, Tuple[int, int]]:
        """Pairs whose owner changes under ``new_map``:
        ``{pair: (old shard, new shard)}`` — the migration's work list."""
        moved: Dict[Pair, Tuple[int, int]] = {}
        for pair in pairs:
            old = self.shard_for(*pair)
            new = new_map.shard_for(*pair)
            if old != new:
                moved[pair] = (old, new)
        return moved

    # -- derivation (epoch bumps) ------------------------------------------

    def with_shards(self, shards: int) -> "PartitionMap":
        """The same placement policy over a different worker count.

        Overrides that point at a removed shard are dropped (those pairs
        fall back to the ring); everything else is preserved.
        """
        overrides = {
            pair: shard
            for pair, shard in self.overrides.items()
            if shard < shards
        }
        return PartitionMap(
            shards,
            epoch=self.epoch + 1,
            overrides=overrides,
            vnodes=self.vnodes,
        )

    def with_overrides(
        self, overrides: Dict[Pair, int]
    ) -> "PartitionMap":
        """Merge explicit pair pinnings (hot-bucket migration).

        An override of ``None`` removes an existing pinning.
        """
        merged = dict(self.overrides)
        for pair, shard in overrides.items():
            if shard is None:
                merged.pop(pair, None)
            else:
                merged[pair] = shard
        return PartitionMap(
            self.shards,
            epoch=self.epoch + 1,
            overrides=merged,
            vnodes=self.vnodes,
        )

    # -- wire/JSON form ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": PLACEMENT_FORMAT,
            "shards": self.shards,
            "epoch": self.epoch,
            "vnodes": self.vnodes,
            "overrides": [
                [url, anomaly, shard]
                for (url, anomaly), shard in sorted(self.overrides.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PartitionMap":
        if payload.get("format") != PLACEMENT_FORMAT:
            raise ValueError(
                f"unsupported placement format {payload.get('format')!r}"
            )
        return cls(
            payload["shards"],
            epoch=payload["epoch"],
            overrides={
                (url, anomaly): shard
                for url, anomaly, shard in payload.get("overrides", [])
            },
            vnodes=payload.get("vnodes", DEFAULT_VNODES),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PartitionMap)
            and self.shards == other.shards
            and self.epoch == other.epoch
            and self.vnodes == other.vnodes
            and self.overrides == other.overrides
        )

    def __repr__(self) -> str:
        return (
            f"PartitionMap(shards={self.shards}, epoch={self.epoch}, "
            f"overrides={len(self.overrides)})"
        )


# -- autoscaling -------------------------------------------------------------


@dataclass(frozen=True)
class AutoscalePolicy:
    """When to add or remove shards, as data.

    The signals are the ones behind PR 6's per-shard gauges: ingest lag
    (``repro_shard_ingest_lag_seconds`` — how far, in simulated-stream
    seconds, the slowest shard's acks trail its sends) and queue depth
    (``repro_shard_queue_depth`` — outstanding unanswered frames).  Scale
    up when either crosses its threshold on any shard; scale down when
    every shard is idle below ``scale_down_lag`` with empty queues.
    ``cooldown`` spaces actions so one burst cannot thrash the fleet,
    and ``check_every`` bounds evaluation frequency (each check reads a
    handful of counters — cheap, but not free on a hot ingest loop).
    """

    enabled: bool = False
    min_shards: int = 1
    max_shards: int = 8
    scale_up_lag: float = 30.0      # simulated-stream seconds
    scale_up_queue: int = 6         # outstanding frames on any shard
    scale_down_lag: float = 1.0
    check_every: float = 5.0        # wall seconds between evaluations
    cooldown: float = 30.0          # wall seconds between scale actions

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be positive")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if self.scale_up_lag <= 0 or self.scale_up_queue <= 0:
            raise ValueError("scale-up thresholds must be positive")
        if self.scale_down_lag < 0:
            raise ValueError("scale_down_lag must be >= 0")
        if self.check_every < 0 or self.cooldown < 0:
            raise ValueError("check_every/cooldown must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "min_shards": self.min_shards,
            "max_shards": self.max_shards,
            "scale_up_lag": self.scale_up_lag,
            "scale_up_queue": self.scale_up_queue,
            "scale_down_lag": self.scale_down_lag,
            "check_every": self.check_every,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AutoscalePolicy":
        return cls(**payload)


class Autoscaler:
    """Watches shard load and drives ``add_shard`` / ``remove_shard``.

    Poll-driven and synchronous on purpose: the owner (an ingest loop, a
    serve tenant's executor) calls :meth:`poll` wherever it already has
    the session to itself, so a rebalance can never race ingestion.
    ``signals`` defaults to the live backend's per-shard load readings —
    the same values its lag/queue gauges export — and is injectable for
    tests (and for scaling on externally scraped metrics).
    """

    def __init__(
        self,
        session,
        policy: AutoscalePolicy,
        signals: Optional[Callable[[], List[Dict[str, float]]]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.session = session
        self.policy = policy
        self._signals = signals
        self._clock = clock
        self._last_check: Optional[float] = None
        self._last_action: Optional[float] = None
        self.actions: List[Tuple[str, int]] = []   # (direction, new count)

    def _load(self) -> List[Dict[str, float]]:
        if self._signals is not None:
            return self._signals()
        backend = self.session.backend
        shard_load = getattr(backend, "shard_load", None)
        return shard_load() if shard_load is not None else []

    def poll(self) -> Optional[str]:
        """Evaluate once; returns ``"up"``/``"down"`` on action, else None."""
        if not self.policy.enabled:
            return None
        now = self._clock()
        if (
            self._last_check is not None
            and now - self._last_check < self.policy.check_every
        ):
            return None
        self._last_check = now
        if (
            self._last_action is not None
            and now - self._last_action < self.policy.cooldown
        ):
            return None
        load = self._load()
        if not load:
            return None
        # Trust the live backend for the shard count when it has one:
        # injected signals (an external scrape) can lag an action we
        # just took, and a stale count must not breach min/max_shards.
        shards = len(load)
        backend = getattr(self.session, "backend", None)
        live = getattr(backend, "shards", None)
        if live is not None:
            shards = live
        max_lag = max(entry.get("lag", 0.0) for entry in load)
        max_queue = max(entry.get("queue", 0) for entry in load)
        if shards < self.policy.max_shards and (
            max_lag >= self.policy.scale_up_lag
            or max_queue >= self.policy.scale_up_queue
        ):
            self.session.add_shard()
            self._last_action = now
            self.actions.append(("up", shards + 1))
            return "up"
        if (
            shards > self.policy.min_shards
            and max_lag <= self.policy.scale_down_lag
            and max_queue == 0
        ):
            self.session.remove_shard()
            self._last_action = now
            self.actions.append(("down", shards - 1))
            return "down"
        return None


def pairs_of_state(problems: Iterable[Dict[str, Any]]) -> Set[Pair]:
    """The distinct routing pairs present in checkpoint problem entries."""
    return {
        (entry["key"]["url"], entry["key"]["anomaly"])
        for entry in problems
    }


__all__ = [
    "DEFAULT_VNODES",
    "PLACEMENT_FORMAT",
    "Autoscaler",
    "AutoscalePolicy",
    "Pair",
    "PartitionMap",
    "bucket_hash",
    "pairs_of_state",
    "shard_of",
]
