"""Backbone extraction: literals fixed in every model.

A variable ``v`` is *backbone-positive* when every model assigns it True,
*backbone-negative* when every model assigns it False, and *free* otherwise.

Backbone-negative variables are exactly the paper's "definite non-censors":
ASes whose literal is False in all returned solutions.  The complement —
backbone-positive plus free variables — is the potential-censor set, and
backbone-positive variables with a satisfiable formula are the *certain*
censors even when the full model count is larger than one.

Computed by assumption probing: ``v`` can be True iff the formula is
satisfiable under assumption ``v``; similarly for False.  This costs two
incremental solves per variable instead of full enumeration, and is exact
regardless of any enumeration cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import Solver


@dataclass
class BackboneResult:
    """Partition of variables by their behaviour across all models."""

    satisfiable: bool
    always_true: set[int] = field(default_factory=set)
    always_false: set[int] = field(default_factory=set)
    free: set[int] = field(default_factory=set)

    @property
    def unique_model(self) -> bool:
        """True iff the formula has exactly one model over the variables."""
        return self.satisfiable and not self.free


def backbone(cnf: CNF, variables: Optional[Sequence[int]] = None) -> BackboneResult:
    """Compute the backbone of ``cnf`` over ``variables``.

    Parameters
    ----------
    cnf:
        The formula (not mutated).
    variables:
        Variables of interest; defaults to every variable appearing in a
        clause.

    >>> from repro.sat.cnf import CNF
    >>> cnf = CNF(3, [])
    >>> _ = cnf.add_clause([1, 2])
    >>> _ = cnf.add_clause([-2])
    >>> result = backbone(cnf)
    >>> sorted(result.always_true), sorted(result.always_false)
    ([1], [2])
    """
    targets = sorted(variables) if variables is not None else sorted(cnf.variables())
    solver = Solver(cnf)
    base = solver.solve()
    if not base.satisfiable:
        return BackboneResult(satisfiable=False)
    result = BackboneResult(satisfiable=True)
    seed_model = base.model
    for var in targets:
        value = seed_model.get(var)
        if value is None:
            # Variable unknown to the solver: unconstrained, hence free
            # (when the formula is satisfiable both phases extend a model).
            result.free.add(var)
            continue
        # The seed model witnesses one phase; probe the other one only.
        if value:
            flips = solver.solve(assumptions=[-var]).satisfiable
            if flips:
                result.free.add(var)
            else:
                result.always_true.add(var)
        else:
            flips = solver.solve(assumptions=[var]).satisfiable
            if flips:
                result.free.add(var)
            else:
                result.always_false.add(var)
    return result


__all__ = ["backbone", "BackboneResult"]
