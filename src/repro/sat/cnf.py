"""CNF formula representation.

Variables are positive integers ``1..num_vars``; a literal is ``+v`` or
``-v`` (DIMACS convention).  :class:`CNFBuilder` additionally maintains a
bidirectional mapping between variables and arbitrary hashable *names* (the
tomography layer names variables after ``(ASN, anomaly)`` pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple


def var_of(literal: int) -> int:
    """The variable underlying a literal.

    >>> var_of(-3)
    3
    """
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return abs(literal)


def neg(literal: int) -> int:
    """The negation of a literal."""
    if literal == 0:
        raise ValueError("0 is not a valid literal")
    return -literal


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals.

    Duplicate literals are removed on construction; the clause preserves
    first-occurrence order otherwise.  A clause containing both ``v`` and
    ``-v`` is a *tautology* (always true).
    """

    literals: Tuple[int, ...]

    def __init__(self, literals: Iterable[int]) -> None:
        seen: Dict[int, None] = {}
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            seen.setdefault(lit, None)
        object.__setattr__(self, "literals", tuple(seen))

    def __iter__(self) -> Iterator[int]:
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __contains__(self, literal: int) -> bool:
        return literal in self.literals

    @property
    def is_empty(self) -> bool:
        """An empty clause is unsatisfiable."""
        return not self.literals

    @property
    def is_unit(self) -> bool:
        """A unit clause forces its single literal."""
        return len(self.literals) == 1

    @property
    def is_tautology(self) -> bool:
        """True when the clause contains a literal and its negation."""
        lits = set(self.literals)
        return any(-lit in lits for lit in lits)

    def variables(self) -> set[int]:
        """The set of variables mentioned by this clause."""
        return {abs(lit) for lit in self.literals}

    def satisfied_by(self, assignment: Dict[int, bool]) -> bool:
        """Whether a (possibly partial) assignment satisfies this clause."""
        for lit in self.literals:
            value = assignment.get(abs(lit))
            if value is not None and value == (lit > 0):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clause({' '.join(map(str, self.literals))})"


@dataclass
class CNF:
    """A conjunction of :class:`Clause` objects over variables 1..num_vars."""

    num_vars: int
    clauses: List[Clause] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        max_var = max(
            (max(map(abs, c.literals)) for c in self.clauses if c.literals),
            default=0,
        )
        if max_var > self.num_vars:
            raise ValueError(
                f"clause mentions variable {max_var} > num_vars={self.num_vars}"
            )

    def add_clause(self, literals: Iterable[int]) -> Clause:
        """Append a clause, growing ``num_vars`` if needed."""
        clause = literals if isinstance(literals, Clause) else Clause(literals)
        if clause.literals:
            self.num_vars = max(self.num_vars, max(map(abs, clause.literals)))
        self.clauses.append(clause)
        return clause

    def __len__(self) -> int:
        return len(self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def variables(self) -> set[int]:
        """All variables that actually appear in some clause."""
        out: set[int] = set()
        for clause in self.clauses:
            out.update(clause.variables())
        return out

    def copy(self) -> "CNF":
        """A shallow copy sharing immutable clauses."""
        return CNF(self.num_vars, list(self.clauses))

    def to_dimacs(self) -> str:
        """Serialize in DIMACS ``cnf`` format."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause.literals)) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS ``cnf`` document (comments allowed)."""
        num_vars = 0
        clauses: List[Clause] = []
        declared: Optional[int] = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad DIMACS header: {line!r}")
                num_vars = int(parts[2])
                declared = int(parts[3])
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                clauses.append(Clause(lits))
        if declared is not None and declared != len(clauses):
            # Tolerate header/count mismatch: real-world DIMACS files often
            # disagree, and the parse is unambiguous regardless.
            pass
        cnf = cls(num_vars=num_vars, clauses=clauses)
        return cnf


class CNFBuilder:
    """Builds a :class:`CNF` over *named* variables.

    The tomography layer deals in ASes, not integers; this builder allocates
    one solver variable per distinct name and records the mapping both ways.

    >>> builder = CNFBuilder()
    >>> builder.add_clause_named(["AS1", "AS2"])          # AS1 or AS2 censors
    >>> builder.add_clause_named(["AS1"], positive=False)  # AS1 is clean
    >>> cnf = builder.build()
    >>> cnf.num_vars, len(cnf.clauses)
    (2, 2)
    """

    def __init__(self) -> None:
        self._var_by_name: Dict[Hashable, int] = {}
        self._name_by_var: Dict[int, Hashable] = {}
        self._clauses: List[Clause] = []

    def variable(self, name: Hashable) -> int:
        """The solver variable for ``name``, allocating on first use."""
        var = self._var_by_name.get(name)
        if var is None:
            var = len(self._var_by_name) + 1
            self._var_by_name[name] = var
            self._name_by_var[var] = name
        return var

    def has_variable(self, name: Hashable) -> bool:
        """Whether ``name`` has been allocated a variable."""
        return name in self._var_by_name

    def name_of(self, var: int) -> Hashable:
        """The name bound to solver variable ``var``."""
        return self._name_by_var[var]

    @property
    def names(self) -> Tuple[Hashable, ...]:
        """All names, in allocation order (variable 1 first)."""
        return tuple(self._var_by_name)

    @property
    def num_vars(self) -> int:
        """Number of variables allocated so far."""
        return len(self._var_by_name)

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause of raw integer literals."""
        self._clauses.append(Clause(literals))

    def add_clause_named(
        self, names: Sequence[Hashable], positive: bool = True
    ) -> None:
        """Add a clause over named variables.

        With ``positive=True`` adds the disjunction ``(n1 or n2 or ...)``.
        With ``positive=False`` asserts every name false — one negative unit
        clause per name, which is how a censorship-free path measurement
        constrains every AS on the path.
        """
        if positive:
            self._clauses.append(Clause([self.variable(n) for n in names]))
        else:
            for name in names:
                self._clauses.append(Clause([-self.variable(name)]))

    def add_unit(self, name: Hashable, value: bool) -> None:
        """Force a single named variable to ``value``."""
        var = self.variable(name)
        self._clauses.append(Clause([var if value else -var]))

    def build(self) -> CNF:
        """Produce the immutable-ish CNF accumulated so far."""
        return CNF(num_vars=self.num_vars, clauses=list(self._clauses))

    def decode(self, assignment: Dict[int, bool]) -> Dict[Hashable, bool]:
        """Translate a solver assignment back to names."""
        return {
            name: assignment[var]
            for name, var in self._var_by_name.items()
            if var in assignment
        }


__all__ = ["CNF", "Clause", "CNFBuilder", "var_of", "neg"]
