"""Model enumeration and counting via blocking clauses.

The paper classifies every CNF by its number of satisfying assignments:
0 (noise / policy change), exactly 1 (censors exactly identified), or 2+
(candidate set to be narrowed).  Enumeration proceeds by repeatedly solving
and adding a *blocking clause* — the negation of the found model restricted
to the variables of interest — until UNSAT or a cap is reached.

Restricting blocking clauses to ``variables`` projects the model count onto
those variables, which matters when a CNF contains variables that appear
only in satisfied clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.sat.cnf import CNF
from repro.sat.solver import Assignment, Solver

DEFAULT_MODEL_CAP = 64


@dataclass
class EnumerationResult:
    """Models found by :func:`enumerate_models`.

    Attributes
    ----------
    models:
        The satisfying assignments found (projected onto the requested
        variables), in discovery order.
    capped:
        True when enumeration stopped at the cap; the true count is then
        at least ``len(models) + 1``... strictly greater than ``len(models)``.
    """

    models: List[Assignment] = field(default_factory=list)
    capped: bool = False

    @property
    def count(self) -> int:
        """Number of models found (a lower bound when ``capped``)."""
        return len(self.models)

    @property
    def unsatisfiable(self) -> bool:
        """True when the formula has no model at all."""
        return not self.models

    @property
    def unique(self) -> bool:
        """True when the formula has exactly one (projected) model."""
        return len(self.models) == 1 and not self.capped


def enumerate_models(
    cnf: CNF,
    cap: int = DEFAULT_MODEL_CAP,
    variables: Optional[Sequence[int]] = None,
    metrics=None,
) -> EnumerationResult:
    """Enumerate up to ``cap`` models of ``cnf``.

    Parameters
    ----------
    cnf:
        The formula. It is not mutated; enumeration works on a fresh solver.
    cap:
        Stop after this many models. The paper only needs the three-way
        0/1/2+ classification plus per-variable backbone information, so a
        small cap keeps worst-case CNFs cheap.
    variables:
        Project models onto this subset of variables (default: variables
        that appear in at least one clause). Two models agreeing on the
        projection count once.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; the solver
        records per-solve search counters into it.  Telemetry only.
    """
    if cap < 1:
        raise ValueError("cap must be >= 1")
    project: List[int] = sorted(variables) if variables is not None else sorted(
        cnf.variables()
    )
    solver = Solver(cnf, metrics=metrics)
    result = EnumerationResult()
    while True:
        outcome = solver.solve()
        if not outcome.satisfiable:
            return result
        projected = {var: outcome.model[var] for var in project if var in outcome.model}
        result.models.append(projected)
        if len(result.models) >= cap:
            result.capped = True
            return result
        if not projected:
            # Zero projection variables: the single empty model is all there is.
            return result
        blocking = [(-var if value else var) for var, value in projected.items()]
        if not solver.add_clause(blocking):
            return result


def count_models(
    cnf: CNF,
    cap: int = DEFAULT_MODEL_CAP,
    variables: Optional[Sequence[int]] = None,
) -> int:
    """Count models of ``cnf`` up to ``cap`` (projected like above)."""
    return enumerate_models(cnf, cap=cap, variables=variables).count


def models_agreeing_false(models: Iterable[Assignment]) -> set[int]:
    """Variables assigned False in *every* model of ``models``.

    This is the paper's definite-non-censor rule (§3.2): with multiple
    solutions, an AS is eliminated only if its literal is False in all of
    them.  Returns the empty set when ``models`` is empty.
    """
    iterator = iter(models)
    try:
        first = next(iterator)
    except StopIteration:
        return set()
    always_false = {var for var, value in first.items() if not value}
    for model in iterator:
        always_false = {var for var in always_false if not model.get(var, True)}
        if not always_false:
            break
    return always_false


__all__ = [
    "enumerate_models",
    "count_models",
    "EnumerationResult",
    "models_agreeing_false",
    "DEFAULT_MODEL_CAP",
]
