"""A CDCL SAT solver with two-watched-literal propagation.

This is a compact but real implementation of the standard conflict-driven
clause-learning loop (MiniSat lineage): unit propagation over watched
literals, first-UIP conflict analysis with clause learning and non-
chronological backjumping, and EVSIDS-style activity-based branching.

The tomography CNFs produced by this project are small (tens of variables),
but the solver is general and is exercised by the test suite on random 3-SAT
and crafted instances as well.

Example
-------
>>> from repro.sat.cnf import CNF
>>> cnf = CNF(2, [])
>>> _ = cnf.add_clause([1, 2])
>>> _ = cnf.add_clause([-1])
>>> result = Solver(cnf).solve()
>>> result.satisfiable, result.model[1], result.model[2]
(True, False, True)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sat.cnf import CNF, Clause

Assignment = Dict[int, bool]

_ACTIVITY_RESCALE = 1e100
_ACTIVITY_DECAY = 1.0 / 0.95


@dataclass
class SolveResult:
    """Outcome of a :meth:`Solver.solve` call.

    Attributes
    ----------
    satisfiable:
        Whether a model was found (under the given assumptions).
    model:
        A total assignment ``{var: bool}`` when satisfiable, else empty.
    conflicts, decisions, propagations:
        Search statistics, useful for benchmarks and regression tests.
    """

    satisfiable: bool
    model: Assignment = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def __bool__(self) -> bool:
        return self.satisfiable


class Solver:
    """Conflict-driven clause-learning solver over a :class:`CNF`.

    The solver is incremental: :meth:`add_clause` may be called between
    :meth:`solve` calls (model enumeration adds blocking clauses this way).
    Learned clauses are retained across calls; assumption-based solving
    never learns clauses that depend on the assumptions, because assumptions
    are implemented as decision levels and analysis stops at them.
    """

    def __init__(self, cnf: CNF, metrics=None) -> None:
        # Optional repro.obs registry: per-solve search counters are
        # recorded in _result (the single exit point) as deltas, so the
        # search loops themselves stay uninstrumented.
        if metrics is not None:
            self._m_counters = (
                metrics.counter("repro_sat_solves_total"),
                metrics.counter("repro_sat_conflicts_total"),
                metrics.counter("repro_sat_decisions_total"),
                metrics.counter("repro_sat_propagations_total"),
            )
        else:
            self._m_counters = None
        self._m_reported = (0, 0, 0)
        self._num_vars = cnf.num_vars
        # Assignment state, indexed by variable (slot 0 unused).
        self._value: List[Optional[bool]] = [None] * (self._num_vars + 1)
        self._level: List[int] = [0] * (self._num_vars + 1)
        self._reason: List[Optional[int]] = [None] * (self._num_vars + 1)
        self._activity: List[float] = [0.0] * (self._num_vars + 1)
        self._activity_inc = 1.0
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagate_head = 0
        # Clause database: lists of literals; index 0/1 are the watched slots.
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._root_units: List[int] = []
        self._unsat = False  # formula is unsatisfiable at root level
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        for clause in cnf.clauses:
            self.add_clause(clause)

    # ------------------------------------------------------------------
    # Clause database
    # ------------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became root-UNSAT.

        Must be called with the solver at decision level 0 (which is the
        state after construction and after every :meth:`solve`).
        """
        if self._trail_lim:
            raise RuntimeError("add_clause requires decision level 0")
        if isinstance(literals, Clause):
            lits = list(literals.literals)
        else:
            lits = list(dict.fromkeys(literals))
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_var(abs(lit))
        lit_set = set(lits)
        if any(-lit in lit_set for lit in lits):
            return not self._unsat  # tautology: no constraint
        # Drop literals already false at root; satisfied clause is a no-op.
        reduced: List[int] = []
        for lit in lits:
            value = self._lit_value(lit)
            if value is True:
                return not self._unsat
            if value is None:
                reduced.append(lit)
        if not reduced:
            self._unsat = True
            return False
        if len(reduced) == 1:
            self._root_units.append(reduced[0])
            if not self._enqueue(reduced[0], None):
                self._unsat = True
                return False
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        index = len(self._clauses)
        self._clauses.append(reduced)
        self._watch(reduced[0], index)
        self._watch(reduced[1], index)
        return not self._unsat

    def _ensure_var(self, var: int) -> None:
        while self._num_vars < var:
            self._num_vars += 1
            self._value.append(None)
            self._level.append(0)
            self._reason.append(None)
            self._activity.append(0.0)

    def _watch(self, lit: int, clause_index: int) -> None:
        self._watches.setdefault(-lit, []).append(clause_index)

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> Optional[bool]:
        value = self._value[abs(lit)]
        if value is None:
            return None
        return value if lit > 0 else not value

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        """Assign ``lit`` true; False when it contradicts the current state."""
        current = self._lit_value(lit)
        if current is not None:
            return current
        var = abs(lit)
        self._value[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        for lit in reversed(self._trail[bound:]):
            var = abs(lit)
            self._value[var] = None
            self._reason[var] = None
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def _propagate(self) -> Optional[int]:
        """Unit-propagate; return a conflicting clause index or None."""
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            self.propagations += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            kept: List[int] = []
            conflict: Optional[int] = None
            i = 0
            while i < len(watchers):
                ci = watchers[i]
                i += 1
                clause = self._clauses[ci]
                # Normalize: the falsified literal sits in slot 1.
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) is True:
                    kept.append(ci)
                    continue
                # Look for a non-false replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], ci)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(ci)
                if not self._enqueue(first, ci):
                    conflict = ci
                    kept.extend(watchers[i:])
                    break
            self._watches[lit] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1.0 / _ACTIVITY_RESCALE
            self._activity_inc *= 1.0 / _ACTIVITY_RESCALE

    def _analyze(self, conflict: int, floor_level: int) -> Tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0  # literals of the current level still to resolve
        lit: Optional[int] = None
        reason_clause: Sequence[int] = self._clauses[conflict]
        index = len(self._trail)
        current_level = self._decision_level()
        while True:
            for q in reason_clause:
                if lit is not None and q == lit:
                    continue
                var = abs(q)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] >= current_level:
                    counter += 1
                else:
                    learned.append(q)
            # Walk the trail backwards to the next marked literal.
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[abs(lit)]:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[abs(lit)]
            assert reason_index is not None, "UIP literal must have a reason"
            reason_clause = self._clauses[reason_index]
        learned[0] = -lit
        if len(learned) == 1:
            backjump = floor_level
        else:
            backjump = max(self._level[abs(q)] for q in learned[1:])
            backjump = max(backjump, floor_level)
        return learned, backjump

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _pick_branch_literal(self) -> Optional[int]:
        best_var = 0
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if self._value[var] is None and self._activity[var] > best_activity:
                best_var = var
                best_activity = self._activity[var]
        if best_var == 0:
            return None
        # Negative phase first: tomography models are sparse (few censors),
        # so trying False first finds models with less backtracking.
        return -best_var

    def solve(self, assumptions: Sequence[int] = ()) -> SolveResult:
        """Search for a model extending ``assumptions``.

        Assumptions are literals temporarily forced true; they behave like
        external decisions and leave no trace in the learned-clause database
        that would be unsound without them.
        """
        self._cancel_until(0)
        if self._unsat:
            return self._result(False)
        if self._propagate() is not None:
            self._unsat = True
            return self._result(False)
        # Install assumptions, each on its own decision level.
        for lit in assumptions:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._ensure_var(abs(lit))
            value = self._lit_value(lit)
            if value is False:
                self._cancel_until(0)
                return self._result(False)
            if value is None:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                if self._propagate() is not None:
                    self._cancel_until(0)
                    return self._result(False)
        floor_level = self._decision_level()
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self._decision_level() <= floor_level:
                    self._cancel_until(0)
                    if floor_level == 0:
                        self._unsat = True
                    return self._result(False)
                learned, backjump = self._analyze(conflict, floor_level)
                self._cancel_until(backjump)
                if len(learned) == 1 and backjump == 0:
                    self._root_units.append(learned[0])
                    self._enqueue(learned[0], None)
                elif len(learned) == 1:
                    # Asserting unit but assumptions pin us above level 0:
                    # enqueue without recording a (sound) learned clause.
                    self._enqueue(learned[0], None)
                else:
                    index = len(self._clauses)
                    self._clauses.append(learned)
                    self._watch(learned[0], index)
                    self._watch(learned[1], index)
                    self._enqueue(learned[0], index)
                self._activity_inc *= _ACTIVITY_DECAY
                continue
            branch = self._pick_branch_literal()
            if branch is None:
                model = {
                    var: bool(self._value[var])
                    for var in range(1, self._num_vars + 1)
                }
                self._cancel_until(0)
                return self._result(True, model)
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(branch, None)

    def _result(self, satisfiable: bool, model: Optional[Assignment] = None) -> SolveResult:
        if self._m_counters is not None:
            solves, conflicts, decisions, propagations = self._m_counters
            last = self._m_reported
            solves.inc()
            conflicts.inc(self.conflicts - last[0])
            decisions.inc(self.decisions - last[1])
            propagations.inc(self.propagations - last[2])
            self._m_reported = (
                self.conflicts, self.decisions, self.propagations
            )
        return SolveResult(
            satisfiable=satisfiable,
            model=model or {},
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables known to the solver."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses (original + learned) in the database."""
        return len(self._clauses)


def check_model(cnf: CNF, model: Assignment) -> bool:
    """Verify that ``model`` satisfies every clause of ``cnf``.

    Used pervasively in tests: any model the solver emits must check.
    """
    return all(clause.satisfied_by(model) for clause in cnf.clauses)


__all__ = ["Solver", "SolveResult", "Assignment", "check_model"]
