"""A from-scratch boolean satisfiability toolkit.

The paper feeds per-(URL, anomaly, time-window) CNFs to "an off-the-shelf SAT
solver" and classifies them by their number of solutions (0 / 1 / 2+), then
uses "False in every returned solution" to eliminate definite non-censors.
No third-party solver is available offline, so this package provides:

- :class:`~repro.sat.cnf.CNF` / :class:`~repro.sat.cnf.Clause` — DIMACS-style
  formula representation with named variables,
- :class:`~repro.sat.solver.Solver` — CDCL (conflict-driven clause learning)
  with two-watched-literal propagation and activity-based branching,
- :func:`~repro.sat.enumerate.enumerate_models` /
  :func:`~repro.sat.enumerate.count_models` — model enumeration via blocking
  clauses, with a configurable cap,
- :func:`~repro.sat.backbone.backbone` — literals fixed in *every* model,
  which is exactly the paper's non-censor elimination rule,
- :mod:`~repro.sat.simplify` — unit propagation closure, pure-literal and
  subsumption simplification used to pre-shrink tomography CNFs.

Literals use the DIMACS convention: variables are positive integers and a
negative integer denotes negation.
"""

from repro.sat.backbone import BackboneResult, backbone
from repro.sat.cnf import CNF, Clause, CNFBuilder
from repro.sat.enumerate import EnumerationResult, count_models, enumerate_models
from repro.sat.simplify import propagate_units, pure_literals, subsumed_clauses
from repro.sat.solver import Assignment, SolveResult, Solver

__all__ = [
    "CNF",
    "Clause",
    "CNFBuilder",
    "Solver",
    "SolveResult",
    "Assignment",
    "enumerate_models",
    "count_models",
    "EnumerationResult",
    "backbone",
    "BackboneResult",
    "propagate_units",
    "pure_literals",
    "subsumed_clauses",
]
