"""CNF simplification: unit propagation closure, pure literals, subsumption.

The tomography CNFs have a characteristic shape — many negative unit clauses
(from censorship-free measurements) plus a few positive clauses (from
censored measurements).  Unit-propagating the negatives usually collapses
the positives to units or empties, so most instances are decided here
without search.  The functions are pure: they return new structures and
leave their inputs untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sat.cnf import CNF, Clause


@dataclass
class PropagationResult:
    """Outcome of :func:`propagate_units`.

    ``conflict`` means the closure derived both ``v`` and ``-v`` (or an
    empty clause): the CNF is unsatisfiable.  Otherwise ``forced`` maps each
    decided variable to its forced value and ``residual`` holds the clauses
    not yet satisfied, with falsified literals removed.
    """

    conflict: bool
    forced: Dict[int, bool] = field(default_factory=dict)
    residual: List[Clause] = field(default_factory=list)

    @property
    def decided(self) -> bool:
        """True when propagation alone fully decided the formula."""
        return self.conflict or not self.residual


def propagate_units(cnf: CNF) -> PropagationResult:
    """Compute the unit-propagation closure of ``cnf``.

    >>> cnf = CNF(3, [])
    >>> _ = cnf.add_clause([-1])
    >>> _ = cnf.add_clause([1, 2, 3])
    >>> _ = cnf.add_clause([-3])
    >>> result = propagate_units(cnf)
    >>> result.conflict, result.forced
    (False, {1: False, 3: False, 2: True})
    """
    forced: Dict[int, bool] = {}
    queue: List[int] = []
    clauses: List[Tuple[int, ...]] = []
    for clause in cnf.clauses:
        if clause.is_tautology:
            continue
        if clause.is_empty:
            return PropagationResult(conflict=True)
        if clause.is_unit:
            queue.append(clause.literals[0])
        else:
            clauses.append(clause.literals)

    def assign(lit: int) -> bool:
        var, value = abs(lit), lit > 0
        prior = forced.get(var)
        if prior is None:
            forced[var] = value
            return True
        return prior == value

    while True:
        while queue:
            lit = queue.pop()
            if not assign(lit):
                return PropagationResult(conflict=True, forced=forced)
        progressed = False
        remaining: List[Tuple[int, ...]] = []
        for lits in clauses:
            satisfied = False
            alive: List[int] = []
            for lit in lits:
                value = forced.get(abs(lit))
                if value is None:
                    alive.append(lit)
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                progressed = True
                continue
            if not alive:
                return PropagationResult(conflict=True, forced=forced)
            if len(alive) == 1:
                queue.append(alive[0])
                progressed = True
                continue
            if len(alive) != len(lits):
                progressed = True
            remaining.append(tuple(alive))
        clauses = remaining
        if not queue and not progressed:
            break
    return PropagationResult(
        conflict=False,
        forced=forced,
        residual=[Clause(lits) for lits in clauses],
    )


class IncrementalPropagation:
    """Resumable unit-propagation state: clauses may arrive at any time.

    The streaming engine (:mod:`repro.stream`) appends clauses as
    measurements come in; because clauses only ever *accumulate*, the
    propagation closure is monotone — forced assignments never retract and
    a conflict, once reached, is final.  The closure is the same least
    fixpoint :func:`propagate_units` computes over a complete CNF (unit
    propagation is confluent), so resuming is exact, not approximate.

    ``forced`` maps each decided variable to its value, ``residual`` holds
    the not-yet-satisfied clauses with falsified literals removed, and
    ``conflict`` marks unsatisfiability.  Assignments reduce the whole
    residual per forced literal (no watchlists); the tomography CNFs keep
    the residual to a handful of positive clauses, where a rescan is
    cheaper than watcher bookkeeping.

    >>> state = IncrementalPropagation()
    >>> changed = state.add_clause([1, 2, 3])
    >>> changed = state.add_clause([-1]) and state.add_clause([-3])
    >>> state.conflict, state.forced
    (False, {1: False, 3: False, 2: True})
    """

    __slots__ = ("forced", "conflict", "_clauses")

    def __init__(self) -> None:
        self.forced: Dict[int, bool] = {}
        self.conflict: bool = False
        self._clauses: List[Tuple[int, ...]] = []

    @property
    def residual(self) -> List[Tuple[int, ...]]:
        """Unsatisfied clauses under the current closure, reduced."""
        return list(self._clauses)

    @property
    def decided(self) -> bool:
        """True when the closure fully decided the formula so far."""
        return self.conflict or not self._clauses

    def value_of(self, variable: int) -> Optional[bool]:
        """The forced value of ``variable``, or None while free."""
        return self.forced.get(variable)

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Append one clause and re-close; True when the state changed.

        A clause already satisfied by the closure is a no-op.  After a
        conflict the state is frozen (every later clause is vacuous in an
        unsatisfiable formula).
        """
        if self.conflict:
            return False
        alive: List[int] = []
        seen: Set[int] = set()
        for lit in literals:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if lit in seen:
                continue
            if -lit in seen:
                return False  # tautology
            seen.add(lit)
            value = self.forced.get(abs(lit))
            if value is None:
                alive.append(lit)
            elif value == (lit > 0):
                return False  # already satisfied
        if not alive:
            self.conflict = True
            return True
        if len(alive) == 1:
            self._propagate([alive[0]])
            return True
        self._clauses.append(tuple(alive))
        return True

    def _propagate(self, queue: List[int]) -> None:
        """Drain newly forced literals to the fixpoint."""
        while queue:
            lit = queue.pop()
            var, value = abs(lit), lit > 0
            prior = self.forced.get(var)
            if prior is not None:
                if prior != value:
                    self.conflict = True
                    return
                continue
            self.forced[var] = value
            remaining: List[Tuple[int, ...]] = []
            for lits in self._clauses:
                satisfied = False
                alive: List[int] = []
                for other in lits:
                    known = self.forced.get(abs(other))
                    if known is None:
                        alive.append(other)
                    elif known == (other > 0):
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not alive:
                    self.conflict = True
                    return
                if len(alive) == 1:
                    queue.append(alive[0])
                    continue
                remaining.append(tuple(alive))
            self._clauses = remaining


def pure_literals(cnf: CNF) -> Set[int]:
    """Literals whose negation never appears in ``cnf``.

    Pure literals can always be set true without losing satisfiability.

    >>> cnf = CNF(2, [])
    >>> _ = cnf.add_clause([1, 2])
    >>> _ = cnf.add_clause([1, -2])
    >>> pure_literals(cnf)
    {1}
    """
    seen: Set[int] = set()
    for clause in cnf.clauses:
        seen.update(clause.literals)
    return {lit for lit in seen if -lit not in seen}


def subsumed_clauses(cnf: CNF) -> Set[int]:
    """Indices of clauses subsumed by some other (smaller or equal) clause.

    Clause ``C`` subsumes ``D`` when ``C ⊆ D``; ``D`` is then redundant.
    Quadratic in the number of clauses, intended for the small tomography
    CNFs and for testing the solver on pre-shrunk inputs.
    """
    sets = [frozenset(clause.literals) for clause in cnf.clauses]
    order = sorted(range(len(sets)), key=lambda i: len(sets[i]))
    redundant: Set[int] = set()
    kept: List[int] = []
    for i in order:
        if any(sets[j] <= sets[i] for j in kept):
            redundant.add(i)
        else:
            kept.append(i)
    return redundant


def simplified(cnf: CNF) -> CNF:
    """A logically equivalent CNF with subsumed clauses removed.

    Equivalence here is model-equivalence over the original variables that
    remain mentioned; unit clauses are preserved so no forced information
    is lost.
    """
    redundant = subsumed_clauses(cnf)
    clauses = [c for i, c in enumerate(cnf.clauses) if i not in redundant]
    return CNF(num_vars=cnf.num_vars, clauses=clauses)


__all__ = [
    "propagate_units",
    "PropagationResult",
    "IncrementalPropagation",
    "pure_literals",
    "subsumed_clauses",
    "simplified",
]
