"""The on-path middlebox interface and its action vocabulary.

A middlebox lives inside an AS.  When a session's forwarding path crosses
that AS, the session simulator offers the middlebox each observable event
(a DNS query, a TCP/HTTP session) and the middlebox answers with an
*action* — inject a forged DNS response, inject a RST, tamper with sequence
numbers, serve a blockpage — or ``None`` to let traffic pass.

Actions are declarative: the middlebox never touches packets itself.  The
session simulator materializes actions into packets with the correct
timing and TTL arithmetic for the middlebox's position on the path, so
every censorship technique automatically produces the side-channel
artefacts (TTL steps, racing responses) that ICLab's detectors key on.

The concrete censor implementations live in :mod:`repro.censorship`; this
module only defines the contract, keeping the packet simulator free of any
censorship policy knowledge.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.netsim.path import RouterPath
from repro.util.rng import DeterministicRNG


@dataclass(frozen=True)
class SessionContext:
    """Everything a middlebox may inspect about a session.

    ``hop_index`` is the router-hop distance from the client to the
    middlebox's first router — it determines injection timing and TTLs.
    """

    domain: str
    url: str
    client_asn: int
    server_asn: int
    router_path: RouterPath
    hop_index: int
    timestamp: int
    rng: DeterministicRNG


class DnsInjectAction(enum.Enum):
    """How a DNS injector forges its answer."""

    BOGUS_ADDRESS = "bogus"        # point the name at a sinkhole address
    BLOCKPAGE_ADDRESS = "blockpage"  # point the name at a blockpage server


@dataclass(frozen=True)
class DnsInjection:
    """Inject a forged DNS response racing the legitimate one."""

    kind: DnsInjectAction
    forged_address: int
    injector_asn: int


class TcpActionKind(enum.Enum):
    """The TCP-level censorship techniques the simulator materializes."""

    RST_INJECT = "rst"
    SEQ_TAMPER = "seq"
    BLOCKPAGE_INJECT = "block-inject"  # forged HTTP response + RST
    BLOCKPAGE_PROXY = "block-proxy"    # transparent proxy serves blockpage
    THROTTLE = "throttle"              # future-work: bandwidth throttling


class SeqTamperMode(enum.Enum):
    """Sequence-number artefact an injected segment creates."""

    OVERLAP = "overlap"  # injected segment overlaps the legitimate stream
    GAP = "gap"          # injected segment leaves a hole before it


@dataclass(frozen=True)
class TcpAction:
    """A censorship action on a TCP/HTTP session.

    ``mimic_server_ttl`` crafts the injected packets' TTL so they arrive
    with the same received-TTL as genuine server packets, defeating the
    TTL detector (some real censors do this; most do not).
    ``suppress_server`` models censors that also reset the server side,
    so no genuine response reaches the client.
    """

    kind: TcpActionKind
    injector_asn: int
    mimic_server_ttl: bool = False
    suppress_server: bool = False
    seq_mode: SeqTamperMode = SeqTamperMode.OVERLAP
    blockpage_html: Optional[str] = None
    throttle_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind in (
            TcpActionKind.BLOCKPAGE_INJECT,
            TcpActionKind.BLOCKPAGE_PROXY,
        ) and not self.blockpage_html:
            raise ValueError(f"{self.kind.value} action requires blockpage_html")
        if self.kind is TcpActionKind.THROTTLE and not (
            0.0 < self.throttle_factor <= 1.0
        ):
            raise ValueError("throttle_factor must be in (0, 1]")


class Middlebox(abc.ABC):
    """Base class for on-path middleboxes (censors)."""

    def __init__(self, asn: int) -> None:
        if asn <= 0:
            raise ValueError("middlebox ASN must be positive")
        self.asn = asn

    @abc.abstractmethod
    def on_dns_query(self, context: SessionContext) -> Optional[DnsInjection]:
        """React to a DNS query for ``context.domain`` crossing this AS."""

    @abc.abstractmethod
    def on_tcp_session(self, context: SessionContext) -> Optional[TcpAction]:
        """React to an HTTP-over-TCP session crossing this AS."""


class TransparentMiddlebox(Middlebox):
    """A middlebox that never interferes; useful as a test double."""

    def on_dns_query(self, context: SessionContext) -> Optional[DnsInjection]:
        return None

    def on_tcp_session(self, context: SessionContext) -> Optional[TcpAction]:
        return None


OnPathMiddlebox = Tuple[Middlebox, int]  # (middlebox, hop_index on this path)


__all__ = [
    "SessionContext",
    "Middlebox",
    "TransparentMiddlebox",
    "DnsInjection",
    "DnsInjectAction",
    "TcpAction",
    "TcpActionKind",
    "SeqTamperMode",
    "OnPathMiddlebox",
]
