"""Packet records as seen by a client-side capture.

These are *observations*, not wire formats: each record carries exactly the
fields ICLab's pcap analysis reads.  Times are floats in seconds relative to
the session start; addresses are integer IPv4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

DEFAULT_TTL = 64
WINDOWS_TTL = 128


class TcpFlags(enum.IntFlag):
    """The TCP flags the detectors care about."""

    NONE = 0
    SYN = 1
    ACK = 2
    FIN = 4
    RST = 8
    PSH = 16

    def short(self) -> str:
        """Compact tcpdump-style flag string, e.g. ``SA`` for SYN|ACK."""
        letters = [
            ("S", TcpFlags.SYN),
            ("A", TcpFlags.ACK),
            ("F", TcpFlags.FIN),
            ("R", TcpFlags.RST),
            ("P", TcpFlags.PSH),
        ]
        return "".join(letter for letter, flag in letters if flag in self) or "."


@dataclass(frozen=True)
class TcpPacket:
    """One TCP/IP packet observed at the client.

    ``from_client`` gives direction; ``ttl`` is the *received* IP TTL (the
    sender's initial TTL minus router hops travelled), which is the field
    the TTL-anomaly detector compares across packets.  ``payload_len`` and
    ``payload`` describe the TCP segment body (HTTP bytes, typically).
    """

    time: float
    from_client: bool
    ttl: int
    seq: int
    ack: int
    flags: TcpFlags
    payload_len: int = 0
    payload: Optional["HttpResponse"] = None
    injected_by: Optional[int] = None  # ground truth: censor ASN, hidden
    #                                    from detectors; used for validation

    def __post_init__(self) -> None:
        if not (0 <= self.ttl <= 255):
            raise ValueError(f"TTL out of range: {self.ttl}")
        if self.payload_len < 0:
            raise ValueError("negative payload length")

    @property
    def is_rst(self) -> bool:
        """Whether the RST flag is set."""
        return TcpFlags.RST in self.flags

    @property
    def is_synack(self) -> bool:
        """Whether this is the handshake SYNACK."""
        return self.flags & _SYNACK_MASK == _SYNACK_MASK

    @property
    def seq_end(self) -> int:
        """Sequence number just past this segment's payload."""
        return self.seq + self.payload_len


_SYNACK_MASK = TcpFlags.SYN | TcpFlags.ACK


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP response body observation (status line + body summary)."""

    status: int
    body: str
    server_header: str = "nginx"
    redirect_location: Optional[str] = None

    @property
    def body_length(self) -> int:
        """Body length in characters (proxy for bytes)."""
        return len(self.body)


@dataclass(frozen=True)
class DnsRecord:
    """One answer record in a DNS response."""

    name: str
    address: int
    ttl: int = 300


@dataclass(frozen=True)
class DnsResponse:
    """A DNS response packet observed at the client."""

    time: float
    txid: int
    qname: str
    answers: Tuple[DnsRecord, ...]
    resolver_address: int
    ttl: int  # received IP TTL
    injected_by: Optional[int] = None  # ground truth, as in TcpPacket

    @property
    def addresses(self) -> Tuple[int, ...]:
        """All answer addresses."""
        return tuple(record.address for record in self.answers)


@dataclass
class PacketCapture:
    """A client-side capture of one session (DNS lookup or TCP connection).

    ``server_packets``/``synack`` are asked for by every detector of every
    test, so their answers are cached and invalidated on ``add`` — captures
    are append-then-analyze, making the cache a pure win.
    """

    tcp: List[TcpPacket] = field(default_factory=list)
    dns: List[DnsResponse] = field(default_factory=list)
    _server_cache: Optional[List[TcpPacket]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def add(self, packet: TcpPacket) -> None:
        """Record a TCP packet."""
        self.tcp.append(packet)
        self._server_cache = None

    def add_dns(self, response: DnsResponse) -> None:
        """Record a DNS response."""
        self.dns.append(response)

    def server_packets(self) -> List[TcpPacket]:
        """TCP packets flowing toward the client, in time order.

        The returned list is shared and must not be mutated by callers.
        """
        cached = self._server_cache
        if cached is None:
            cached = self._server_cache = sorted(
                (p for p in self.tcp if not p.from_client),
                key=lambda p: p.time,
            )
        return cached

    def synack(self) -> Optional[TcpPacket]:
        """The first SYNACK of the capture, if any."""
        for packet in self.server_packets():
            if packet.is_synack:
                return packet
        return None

    def http_responses(self) -> List[HttpResponse]:
        """All HTTP response payloads, in arrival order."""
        return [p.payload for p in self.server_packets() if p.payload is not None]


__all__ = [
    "TcpFlags",
    "TcpPacket",
    "HttpResponse",
    "DnsRecord",
    "DnsResponse",
    "PacketCapture",
    "DEFAULT_TTL",
    "WINDOWS_TTL",
]
