"""Router-level expansion of AS paths.

Traceroute sees *router* hops, not ASes; the TTL arithmetic of the packet
simulator and the hop list of the traceroute simulator both need a
router-level view.  :func:`expand_as_path` deterministically expands an AS
path into per-AS router runs: each AS contributes one to a few routers, each
with an address drawn from one of the AS's prefixes.

Determinism matters: the same (pair, AS path) must expand identically every
time it is traced, otherwise path changes would be conjured out of thin air
and the churn measured by Figure 3 would be inflated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.topology.prefixes import PrefixAllocation
from repro.util.rng import DeterministicRNG


@dataclass(frozen=True)
class RouterHop:
    """One router on the forwarding path."""

    asn: int
    address: int
    hop_index: int  # 0-based distance from the client's first-hop router


@dataclass(frozen=True)
class RouterPath:
    """The router-level forwarding path for one AS path."""

    as_path: Tuple[int, ...]
    hops: Tuple[RouterHop, ...]

    @property
    def hop_count(self) -> int:
        """Total number of router hops."""
        return len(self.hops)

    def hops_to_asn(self, asn: int) -> int:
        """Router hops from the client to the *first* router of ``asn``.

        Raises ValueError when the AS is not on the path.
        """
        for hop in self.hops:
            if hop.asn == asn:
                return hop.hop_index + 1
        raise ValueError(f"AS{asn} is not on this path")

    def routers_of(self, asn: int) -> List[RouterHop]:
        """All routers belonging to ``asn`` on this path."""
        return [hop for hop in self.hops if hop.asn == asn]


def expand_as_path(
    as_path: Sequence[int],
    allocation: PrefixAllocation,
    seed: int = 0,
    min_routers: int = 1,
    max_routers: int = 3,
) -> RouterPath:
    """Expand ``as_path`` into router hops, deterministically.

    The per-AS router count and addresses are a pure function of
    ``(seed, as_path)``, so repeated traceroutes over an unchanged route
    observe identical hops.
    """
    if min_routers < 1 or max_routers < min_routers:
        raise ValueError("need 1 <= min_routers <= max_routers")
    rng = DeterministicRNG(seed, "router-path", tuple(as_path))
    hops: List[RouterHop] = []
    index = 0
    for position, asn in enumerate(as_path):
        if position == 0:
            count = 1  # the client's own AS contributes its gateway only
        else:
            count = rng.randint(min_routers, max_routers)
        for router in range(count):
            address = allocation.router_address(asn, index=rng.randint(1, 2**16))
            hops.append(RouterHop(asn=asn, address=address, hop_index=index))
            index += 1
    return RouterPath(as_path=tuple(as_path), hops=tuple(hops))


__all__ = ["RouterHop", "RouterPath", "expand_as_path"]
