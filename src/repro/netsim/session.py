"""Session simulation: DNS lookups and HTTP fetches across a censored path.

These functions produce the *client-side packet capture* of one test, with
on-path middleboxes given the chance to inject.  Timing and TTL arithmetic
follow from router-hop distances on the :class:`~repro.netsim.path.RouterPath`:

- a packet injected by a middlebox at router-hop ``h`` arrives at the client
  about ``2*h*per_hop_rtt`` after the triggering client packet, always ahead
  of the genuine response from the farther server — which is exactly why
  censors win races and why ICLab sees *two* DNS responses;
- the received TTL of a packet equals the sender's initial TTL minus the
  router hops travelled, so injected packets carry a tell-tale TTL step
  unless the censor deliberately mimics (``mimic_server_ttl``).

Organic noise (spurious server RSTs, one-off TTL jitter, packet loss) is
injected with caller-controlled probabilities; the RST noise rate is how the
reproduction recreates the paper's "RST measurements are low fidelity"
finding (≈30% of RST CNFs unsolvable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.netsim.middlebox import (
    DnsInjection,
    OnPathMiddlebox,
    SessionContext,
    SeqTamperMode,
    TcpAction,
    TcpActionKind,
)
from repro.netsim.packets import (
    DEFAULT_TTL,
    DnsRecord,
    DnsResponse,
    HttpResponse,
    PacketCapture,
    TcpFlags,
    TcpPacket,
)
from repro.netsim.path import RouterPath
from repro.util.rng import DeterministicRNG

_SEGMENT_SIZE = 1460


@dataclass(frozen=True)
class SessionParams:
    """Tunable physics and noise of a session."""

    per_hop_rtt: float = 0.004          # one-way per-router-hop delay, seconds
    server_think_time: float = 0.030    # server processing before first byte
    resolver_think_time: float = 0.015  # resolver processing delay
    server_initial_ttl: int = DEFAULT_TTL
    injector_initial_ttl: int = DEFAULT_TTL
    organic_rst_probability: float = 0.0     # server-side spurious resets
    ttl_jitter_probability: float = 0.0      # one-off TTL wobble (route flap)
    segment_loss_probability: float = 0.0    # a data segment never arrives
    duplicate_dns_probability: float = 0.0   # resolver answer duplicated


@dataclass
class DnsSessionResult:
    """Outcome of a simulated DNS lookup."""

    capture: PacketCapture
    resolved_address: Optional[int]
    injector_asns: Set[int] = field(default_factory=set)


@dataclass
class HttpSessionResult:
    """Outcome of a simulated HTTP fetch."""

    capture: PacketCapture
    delivered_page: Optional[HttpResponse]
    completed: bool
    injector_asns: Set[int] = field(default_factory=set)


def _round_trip(hops: int, params: SessionParams) -> float:
    return 2.0 * hops * params.per_hop_rtt


def simulate_dns_lookup(
    domain: str,
    url: str,
    router_path: RouterPath,
    middleboxes: Sequence[OnPathMiddlebox],
    legitimate_address: int,
    resolver_address: int,
    rng: DeterministicRNG,
    timestamp: int = 0,
    params: SessionParams = SessionParams(),
) -> DnsSessionResult:
    """Simulate one DNS lookup for ``domain`` across ``router_path``.

    The resolver is modelled at the far end of the path (ICLab's Google-DNS
    probe crosses the same national boundary as the destination traffic).
    Every on-path middlebox sees the query; injectors race the resolver.
    The client resolves to the *first* response's address, as a stub
    resolver does — injected answers therefore win.
    """
    capture = PacketCapture()
    total_hops = router_path.hop_count
    txid = rng.randrange(1, 2**16)
    injectors: Set[int] = set()

    responses: List[DnsResponse] = []
    for middlebox, hop_index in sorted(middleboxes, key=lambda pair: pair[1]):
        context = SessionContext(
            domain=domain,
            url=url,
            client_asn=router_path.as_path[0],
            server_asn=router_path.as_path[-1],
            router_path=router_path,
            hop_index=hop_index,
            timestamp=timestamp,
            rng=rng,
        )
        injection = middlebox.on_dns_query(context)
        if injection is None:
            continue
        injectors.add(injection.injector_asn)
        arrival = _round_trip(hop_index + 1, params)
        responses.append(
            DnsResponse(
                time=arrival,
                txid=txid,
                qname=domain,
                answers=(DnsRecord(domain, injection.forged_address),),
                resolver_address=resolver_address,
                ttl=params.injector_initial_ttl - (hop_index + 1),
                injected_by=injection.injector_asn,
            )
        )

    legit_arrival = _round_trip(total_hops, params) + params.resolver_think_time
    legit = DnsResponse(
        time=legit_arrival,
        txid=txid,
        qname=domain,
        answers=(DnsRecord(domain, legitimate_address),),
        resolver_address=resolver_address,
        ttl=params.server_initial_ttl - total_hops,
    )
    responses.append(legit)
    if rng.chance(params.duplicate_dns_probability):
        responses.append(
            DnsResponse(
                time=legit_arrival + 0.4,
                txid=txid,
                qname=domain,
                answers=legit.answers,
                resolver_address=resolver_address,
                ttl=legit.ttl,
            )
        )
    for response in sorted(responses, key=lambda r: r.time):
        capture.add_dns(response)
    resolved = capture.dns[0].addresses[0] if capture.dns else None
    return DnsSessionResult(
        capture=capture, resolved_address=resolved, injector_asns=injectors
    )


def simulate_http_fetch(
    domain: str,
    url: str,
    router_path: RouterPath,
    middleboxes: Sequence[OnPathMiddlebox],
    server_page: HttpResponse,
    rng: DeterministicRNG,
    timestamp: int = 0,
    params: SessionParams = SessionParams(),
) -> HttpSessionResult:
    """Simulate one HTTP GET for ``url`` across ``router_path``.

    Materializes middlebox actions into packets (see module docstring) and
    returns the capture plus the page the client's HTTP parser would
    accept — for TCP that is the first in-sequence payload, so a racing
    injected blockpage displaces the genuine page.
    """
    capture = PacketCapture()
    total_hops = router_path.hop_count
    injectors: Set[int] = set()
    client_isn = rng.randrange(1, 2**31)
    server_isn = rng.randrange(1, 2**31)
    server_ttl = params.server_initial_ttl - total_hops

    # Collect actions from every on-path middlebox, nearest first.
    actions: List[Tuple[int, TcpAction]] = []
    for middlebox, hop_index in sorted(middleboxes, key=lambda pair: pair[1]):
        context = SessionContext(
            domain=domain,
            url=url,
            client_asn=router_path.as_path[0],
            server_asn=router_path.as_path[-1],
            router_path=router_path,
            hop_index=hop_index,
            timestamp=timestamp,
            rng=rng,
        )
        action = middlebox.on_tcp_session(context)
        if action is not None:
            actions.append((hop_index, action))

    # A transparent proxy terminates the connection: middleboxes beyond the
    # nearest proxy never see the session.
    proxy: Optional[Tuple[int, TcpAction]] = next(
        (
            (hop, action)
            for hop, action in actions
            if action.kind is TcpActionKind.BLOCKPAGE_PROXY
        ),
        None,
    )
    if proxy is not None:
        proxy_hop = proxy[0]
        actions = [(hop, action) for hop, action in actions if hop <= proxy_hop]

    # --- handshake -----------------------------------------------------
    capture.add(
        TcpPacket(
            time=0.0,
            from_client=True,
            ttl=DEFAULT_TTL,
            seq=client_isn,
            ack=0,
            flags=TcpFlags.SYN,
        )
    )
    if proxy is not None:
        proxy_hop, proxy_action = proxy
        injectors.add(proxy_action.injector_asn)
        endpoint_hops = proxy_hop + 1
        endpoint_ttl = params.injector_initial_ttl - endpoint_hops
        endpoint_injected_by: Optional[int] = proxy_action.injector_asn
    else:
        endpoint_hops = total_hops
        endpoint_ttl = server_ttl
        endpoint_injected_by = None
    synack_time = _round_trip(endpoint_hops, params)
    capture.add(
        TcpPacket(
            time=synack_time,
            from_client=False,
            ttl=endpoint_ttl,
            seq=server_isn,
            ack=client_isn + 1,
            flags=_SYNACK,
            injected_by=endpoint_injected_by,
        )
    )

    # --- request ---------------------------------------------------------
    # len("GET " + url + " HTTP/1.1\r\nHost: " + domain + "\r\n\r\n")
    request_len = 25 + len(url) + len(domain)
    request_time = synack_time + 0.001
    capture.add(
        TcpPacket(
            time=request_time,
            from_client=True,
            ttl=DEFAULT_TTL,
            seq=client_isn + 1,
            ack=server_isn + 1,
            flags=_ACK_PSH,
            payload_len=request_len,
        )
    )

    data_seq = server_isn + 1
    suppress_server = proxy is not None

    # --- middlebox injections -------------------------------------------
    if proxy is not None:
        proxy_hop, proxy_action = proxy
        page = _blockpage_response(proxy_action)
        _emit_segments(
            capture,
            page,
            start_time=request_time + _round_trip(proxy_hop + 1, params) + 0.005,
            ttl=endpoint_ttl,
            start_seq=data_seq,
            params=params,
            rng=rng,
            injected_by=proxy_action.injector_asn,
        )
    else:
        for hop_index, action in actions:
            injectors.add(action.injector_asn)
            injected_hops = hop_index + 1
            injected_ttl = (
                server_ttl
                if action.mimic_server_ttl
                else params.injector_initial_ttl - injected_hops
            )
            arrival = request_time + _round_trip(injected_hops, params)
            if action.suppress_server:
                suppress_server = True
            if action.kind is TcpActionKind.RST_INJECT:
                capture.add(
                    TcpPacket(
                        time=arrival,
                        from_client=False,
                        ttl=injected_ttl,
                        seq=data_seq,
                        ack=client_isn + 1 + request_len,
                        flags=TcpFlags.RST,
                        injected_by=action.injector_asn,
                    )
                )
            elif action.kind is TcpActionKind.SEQ_TAMPER:
                if action.seq_mode is SeqTamperMode.OVERLAP:
                    seq = data_seq  # collides with the genuine first segment
                else:
                    seq = data_seq + 4 * _SEGMENT_SIZE  # leaves a hole
                capture.add(
                    TcpPacket(
                        time=arrival,
                        from_client=False,
                        ttl=injected_ttl,
                        seq=seq,
                        ack=client_isn + 1 + request_len,
                        flags=TcpFlags.ACK | TcpFlags.PSH,
                        payload_len=512,
                        injected_by=action.injector_asn,
                    )
                )
            elif action.kind is TcpActionKind.BLOCKPAGE_INJECT:
                page = _blockpage_response(action)
                _emit_segments(
                    capture,
                    page,
                    start_time=arrival,
                    ttl=injected_ttl,
                    start_seq=data_seq,
                    params=params,
                    rng=rng,
                    injected_by=action.injector_asn,
                )
                capture.add(
                    TcpPacket(
                        time=arrival + 0.002,
                        from_client=False,
                        ttl=injected_ttl,
                        seq=data_seq + page.body_length,
                        ack=client_isn + 1 + request_len,
                        flags=TcpFlags.RST,
                        injected_by=action.injector_asn,
                    )
                )
            elif action.kind is TcpActionKind.THROTTLE:
                # Throttling does not alter packet contents; it stretches
                # server timing (handled below via throttle_factor).
                pass

    throttle = min(
        (a.throttle_factor for _, a in actions if a.kind is TcpActionKind.THROTTLE),
        default=1.0,
    )

    # --- genuine server response ------------------------------------------
    if not suppress_server:
        first_byte = (
            request_time + _round_trip(total_hops, params) + params.server_think_time
        )
        jitter_ttl = server_ttl
        if rng.chance(params.ttl_jitter_probability):
            jitter_ttl = server_ttl + rng.pick([-2, -1, 1, 2])
        _emit_segments(
            capture,
            server_page,
            start_time=first_byte,
            ttl=server_ttl,
            start_seq=data_seq,
            params=params,
            rng=rng,
            inter_segment=0.002 / throttle,
            jitter_ttl_once=jitter_ttl if jitter_ttl != server_ttl else None,
        )
        if rng.chance(params.organic_rst_probability):
            segments = max(1, -(-server_page.body_length // _SEGMENT_SIZE))
            capture.add(
                TcpPacket(
                    time=first_byte + segments * 0.002 + 0.010,
                    from_client=False,
                    ttl=server_ttl,
                    seq=data_seq + server_page.body_length,
                    ack=client_isn + 1 + request_len,
                    flags=TcpFlags.RST,
                )
            )

    delivered = _first_in_sequence_page(capture, data_seq)
    completed = delivered is not None
    return HttpSessionResult(
        capture=capture,
        delivered_page=delivered,
        completed=completed,
        injector_asns=injectors,
    )


def _blockpage_response(action: TcpAction) -> HttpResponse:
    assert action.blockpage_html is not None
    return HttpResponse(status=403, body=action.blockpage_html, server_header="filter")


_ACK = TcpFlags.ACK
_ACK_PSH = TcpFlags.ACK | TcpFlags.PSH
_SYNACK = TcpFlags.SYN | TcpFlags.ACK


def _emit_segments(
    capture: PacketCapture,
    page: HttpResponse,
    start_time: float,
    ttl: int,
    start_seq: int,
    params: SessionParams,
    rng: DeterministicRNG,
    inter_segment: float = 0.002,
    injected_by: Optional[int] = None,
    jitter_ttl_once: Optional[int] = None,
) -> None:
    """Emit a page as a train of data segments; the page object rides on
    the first segment (payload bodies are not re-assembled by detectors)."""
    remaining = page.body_length
    seq = start_seq
    time = start_time
    first = True
    jitter_target = rng.randrange(1, 1 + max(1, remaining // _SEGMENT_SIZE))
    segment_index = 0
    # chance() inlined for the per-segment loop; degenerate probabilities
    # keep chance()'s no-draw behaviour so the RNG stream is unchanged.
    loss_probability = params.segment_loss_probability
    draw_loss = 0.0 < loss_probability < 1.0
    loss_always = loss_probability >= 1.0
    uniform = rng.random
    while remaining > 0 or first:
        size = min(_SEGMENT_SIZE, remaining) if remaining else 0
        segment_index += 1
        lost = (uniform() < loss_probability) if draw_loss else loss_always
        if lost and not first:
            # lost on the wire: advance seq without a capture entry
            seq += size
            remaining -= size
            time += inter_segment
            continue
        segment_ttl = ttl
        if jitter_ttl_once is not None and segment_index == jitter_target:
            segment_ttl = jitter_ttl_once
        capture.add(
            TcpPacket(
                time=time,
                from_client=False,
                ttl=segment_ttl,
                seq=seq,
                ack=0,
                flags=_ACK_PSH if first else _ACK,
                payload_len=size,
                payload=page if first else None,
                injected_by=injected_by,
            )
        )
        seq += size
        remaining -= size
        time += inter_segment
        first = False


def _first_in_sequence_page(
    capture: PacketCapture, expected_seq: int
) -> Optional[HttpResponse]:
    """The page whose first segment arrives earliest at the expected seq."""
    best: Optional[TcpPacket] = None
    for packet in capture.server_packets():
        if packet.payload is None or packet.seq != expected_seq:
            continue
        if best is None or packet.time < best.time:
            best = packet
    return best.payload if best is not None else None


__all__ = [
    "SessionParams",
    "DnsSessionResult",
    "HttpSessionResult",
    "simulate_dns_lookup",
    "simulate_http_fetch",
]
