"""Packet-level network simulation.

The paper's detectors operate on raw packet captures (double DNS responses,
TTL steps on the SYNACK vs. later packets, overlapping/gapped TCP sequence
numbers, RST flags, blockpage bodies).  This package simulates exactly those
observables: a client-side packet capture of a DNS lookup and of an HTTP
fetch across an AS path, with on-path middleboxes (the censors) able to
inspect and inject.

It deliberately models only what the detectors can see from the client —
per-packet IP TTL, TCP sequence/ack numbers and flags, payload bodies, and
arrival times — rather than a full stack.  That is the fidelity ICLab has:
a pcap at the vantage point.
"""

from repro.netsim.packets import (
    DnsRecord,
    DnsResponse,
    HttpResponse,
    PacketCapture,
    TcpFlags,
    TcpPacket,
)
from repro.netsim.path import RouterPath, expand_as_path
from repro.netsim.session import (
    DnsSessionResult,
    HttpSessionResult,
    simulate_dns_lookup,
    simulate_http_fetch,
)

__all__ = [
    "TcpFlags",
    "TcpPacket",
    "DnsRecord",
    "DnsResponse",
    "HttpResponse",
    "PacketCapture",
    "RouterPath",
    "expand_as_path",
    "simulate_dns_lookup",
    "simulate_http_fetch",
    "DnsSessionResult",
    "HttpSessionResult",
]
