"""Localizing ASes that block access to Tor bridges (future work #2).

Bridges are unlisted relay endpoints; censors that have learned a bridge's
address drop TCP SYNs toward it for clients in their jurisdiction (or for
everyone, if unscoped).  A reachability probe either completes a handshake
(clean) or times out (anomalous) — a boolean end-to-end measurement over
the AS path, which is precisely the tomography input shape.

Censor knowledge is modelled per (censor, bridge): each bridge-blocking
censor *discovers* each bridge at a deterministic pseudo-random time and
blocks it from then on — reproducing the "censors' delay in blocking
circumvention proxies" dynamic the paper cites (Field & Tsai, FOCI 2016).
Discovery-time variation also creates the time-window policy changes the
splitting machinery exists to absorb.

Bridge-blocking is attached to censors that deploy any TCP-level
technique; the deployment's ground truth remains authoritative for
validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.anomaly import Anomaly
from repro.censorship.censor import CensorMiddlebox, Technique
from repro.core.observations import Observation
from repro.core.problem import SolutionStatus, TomographyProblem
from repro.core.splitting import split_observations
from repro.scenario.world import World
from repro.util.rng import DeterministicRNG, derive_seed
from repro.util.timeutil import DAY, Granularity


@dataclass(frozen=True)
class BridgeCampaignConfig:
    """Parameters of the bridge reachability campaign."""

    seed: int = 0
    start: int = 0
    end: int = 14 * DAY
    num_bridges: int = 6
    probes_per_pair_per_day: int = 1
    blocker_fraction: float = 0.7     # TCP-capable censors that also hunt bridges
    mean_discovery_days: float = 4.0  # censor's delay in learning a bridge

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("empty campaign window")
        if self.num_bridges < 1:
            raise ValueError("need at least one bridge")
        if not (0.0 <= self.blocker_fraction <= 1.0):
            raise ValueError("blocker_fraction must be in [0, 1]")


@dataclass(frozen=True)
class BridgeProbe:
    """One bridge reachability test."""

    timestamp: int
    vantage_asn: int
    bridge_id: int
    bridge_asn: int
    as_path: Tuple[int, ...]
    reachable: bool
    blocked_by: Tuple[int, ...] = ()  # ground truth


class _BridgeBlocking:
    """Per-censor bridge knowledge: discovery times per bridge."""

    def __init__(self, config: BridgeCampaignConfig, world: World) -> None:
        self._discovery: Dict[Tuple[int, int], Optional[int]] = {}
        self._config = config
        self._world = world

    def _censor_blocks_bridges(self, censor: CensorMiddlebox) -> bool:
        rng = DeterministicRNG(
            derive_seed(self._config.seed, "bridge-blocker", censor.asn)
        )
        has_tcp = any(t.is_tcp for t in censor.techniques)
        return has_tcp and rng.chance(self._config.blocker_fraction)

    def discovery_time(self, censor_asn: int, bridge_id: int) -> Optional[int]:
        """When the censor learned this bridge; None = never."""
        key = (censor_asn, bridge_id)
        if key not in self._discovery:
            censor = self._world.deployment.censor_of(censor_asn)
            if censor is None or not self._censor_blocks_bridges(censor):
                self._discovery[key] = None
            else:
                rng = DeterministicRNG(
                    self._config.seed, "bridge-discovery", censor_asn, bridge_id
                )
                delay = rng.expovariate(
                    1.0 / (self._config.mean_discovery_days * DAY)
                )
                self._discovery[key] = self._config.start + int(delay)
        return self._discovery[key]

    def blocks(
        self, censor_asn: int, bridge_id: int, client_asn: int, timestamp: int
    ) -> bool:
        """Whether the censor drops SYNs to this bridge for this client now."""
        censor = self._world.deployment.censor_of(censor_asn)
        if censor is None:
            return False
        if censor.scoped and self._world.country_by_asn.get(
            client_asn
        ) != censor.country_code:
            return False
        discovered = self.discovery_time(censor_asn, bridge_id)
        return discovered is not None and timestamp >= discovered

    def true_blockers(self) -> Set[int]:
        """Ground truth: every censor that hunts bridges at all."""
        return {
            censor.asn
            for censor in self._world.deployment.censors_by_asn.values()
            if self._censor_blocks_bridges(censor)
        }


def run_bridge_campaign(
    world: World, config: BridgeCampaignConfig
) -> Tuple[List[BridgeProbe], Set[int]]:
    """Probe every (vantage, bridge) pair daily; returns (probes, truth).

    Bridges are placed in hosting-hub content ASes (where real bridges
    run); the returned truth set holds every bridge-hunting censor ASN.
    """
    rng = DeterministicRNG(config.seed, "bridge-campaign")
    blocking = _BridgeBlocking(config, world)
    hosts = world.test_list.dest_asns
    bridges = [
        (bridge_id, hosts[bridge_id % len(hosts)])
        for bridge_id in range(config.num_bridges)
    ]
    probes: List[BridgeProbe] = []
    for vantage in world.vantage_points:
        for bridge_id, bridge_asn in bridges:
            for day_start in range(config.start, config.end, DAY):
                for _ in range(config.probes_per_pair_per_day):
                    timestamp = day_start + rng.randrange(DAY)
                    if timestamp >= config.end:
                        continue
                    as_path = world.oracle.aspath_at(
                        vantage.asn, bridge_asn, timestamp
                    )
                    if as_path is None:
                        continue
                    blockers = tuple(
                        asn
                        for asn in as_path
                        if blocking.blocks(asn, bridge_id, vantage.asn, timestamp)
                    )
                    probes.append(
                        BridgeProbe(
                            timestamp=timestamp,
                            vantage_asn=vantage.asn,
                            bridge_id=bridge_id,
                            bridge_asn=bridge_asn,
                            as_path=tuple(as_path),
                            reachable=not blockers,
                            blocked_by=blockers,
                        )
                    )
    return probes, blocking.true_blockers()


def bridge_observations(probes: Sequence[BridgeProbe]) -> List[Observation]:
    """Reachability probes as boolean tomography observations."""
    return [
        Observation(
            url=f"bridge://{probe.bridge_id}/",
            anomaly=Anomaly.BRIDGE,
            detected=not probe.reachable,
            as_path=probe.as_path,
            timestamp=probe.timestamp,
            measurement_id=index,
        )
        for index, probe in enumerate(probes)
    ]


@dataclass
class BridgeLocalization:
    """Output of :func:`localize_bridge_blockers`."""

    identified: List[int] = field(default_factory=list)
    potential: List[int] = field(default_factory=list)
    true_blockers: Set[int] = field(default_factory=set)
    problems_solved: int = 0
    unsat_problems: int = 0

    @property
    def precision(self) -> float:
        """Fraction of identified blockers that truly hunt bridges."""
        if not self.identified:
            return 0.0
        true = [asn for asn in self.identified if asn in self.true_blockers]
        return len(true) / len(self.identified)


def localize_bridge_blockers(
    world: World,
    config: BridgeCampaignConfig = BridgeCampaignConfig(),
    granularities: Sequence[Granularity] = (Granularity.DAY, Granularity.WEEK),
) -> BridgeLocalization:
    """End-to-end: probes → observations → SAT problems → bridge blockers."""
    probes, true_blockers = run_bridge_campaign(world, config)
    observations = bridge_observations(probes)
    groups = split_observations(observations, granularities=granularities)
    result = BridgeLocalization(true_blockers=true_blockers)
    identified: set = set()
    potential: set = set()
    for key, group in groups.items():
        if not any(o.detected for o in group):
            continue
        solution = TomographyProblem(key, group).solve()
        result.problems_solved += 1
        if solution.status is SolutionStatus.UNSATISFIABLE:
            result.unsat_problems += 1
            continue
        identified |= solution.censors
        potential |= solution.potential_censors
    result.identified = sorted(identified)
    result.potential = sorted(potential - identified)
    return result


__all__ = [
    "BridgeCampaignConfig",
    "BridgeProbe",
    "run_bridge_campaign",
    "bridge_observations",
    "localize_bridge_blockers",
    "BridgeLocalization",
]
