"""Throttling localization from M-Lab-style throughput measurements.

The M-Lab analog: vantage points run NDT-like throughput tests against
measurement servers hosted in content ASes.  Each (vantage, server) pair
has a stable baseline throughput (bottleneck capacity plus mild noise);
on-path censors deploying :attr:`Technique.THROTTLE` against circumvention
protocols multiply achievable throughput by their throttle factor.

Detection is *relative*: a test is anomalous when measured throughput
falls below ``throttle_detection_ratio`` times the pair's historical
maximum — mirroring how throttling is inferred from longitudinal M-Lab
data rather than absolute numbers.

Localization then reuses the paper's machinery unchanged: anomalous tests
become positive clauses over the AS path, clean tests negative units, one
problem per (server, window), solved by the same SAT pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.anomaly import Anomaly
from repro.censorship.censor import Technique
from repro.core.observations import Observation
from repro.core.problem import SolutionStatus, TomographyProblem
from repro.core.splitting import split_observations
from repro.scenario.world import World
from repro.util.rng import DeterministicRNG
from repro.util.timeutil import DAY, Granularity

_CIRCUMVENTION_PSEUDO_DOMAIN = "circumvention-protocol.test"


@dataclass(frozen=True)
class ThrottlingCampaignConfig:
    """Parameters of the throughput measurement campaign."""

    seed: int = 0
    start: int = 0
    end: int = 14 * DAY
    tests_per_pair_per_day: int = 2
    num_servers: int = 4
    baseline_mbps_range: Tuple[float, float] = (40.0, 200.0)
    noise_stddev_fraction: float = 0.05
    throttle_detection_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("empty campaign window")
        if self.tests_per_pair_per_day < 1:
            raise ValueError("tests_per_pair_per_day must be >= 1")
        if not (0.0 < self.throttle_detection_ratio < 1.0):
            raise ValueError("throttle_detection_ratio must be in (0, 1)")


@dataclass(frozen=True)
class ThroughputMeasurement:
    """One NDT-style throughput test."""

    timestamp: int
    vantage_asn: int
    server_asn: int
    as_path: Tuple[int, ...]
    throughput_mbps: float
    baseline_mbps: float
    throttled_by: Tuple[int, ...] = ()  # ground truth, never read by inference

    @property
    def ratio(self) -> float:
        """Measured throughput relative to the pair baseline."""
        return self.throughput_mbps / self.baseline_mbps if self.baseline_mbps else 0.0


def deploy_throttlers(
    world: World, fraction: float = 0.5, seed: int = 0
) -> List[int]:
    """Grant the THROTTLE technique to a subset of unscoped censors.

    The base deployment reproduces the paper's five measured techniques;
    throttling is the future-work addition, so it is layered on here:
    each unscoped (transit) censor becomes a throttler with ``fraction``
    probability, deterministically in ``seed``.  Returns the throttler
    ASNs — the ground truth for validating the localization.
    """
    throttlers: List[int] = []
    for censor in world.deployment.censors_by_asn.values():
        if censor.scoped:
            continue  # edge ACL boxes do not shape transit bandwidth
        rng = DeterministicRNG(seed, "throttler", censor.asn)
        if rng.chance(fraction):
            if Technique.THROTTLE not in censor.techniques:
                censor.techniques = censor.techniques + (Technique.THROTTLE,)
            throttlers.append(censor.asn)
    return sorted(throttlers)


def _throttlers_on_path(
    world: World, as_path: Sequence[int], timestamp: int, client_asn: int
) -> List[Tuple[int, float]]:
    """(ASN, factor) for censors throttling circumvention traffic here.

    Throttling keys on the *protocol*, not on URL categories, so the only
    policy dimension that applies is jurisdiction scope.
    """
    out: List[Tuple[int, float]] = []
    for asn in as_path:
        censor = world.deployment.censor_of(asn)
        if censor is None or Technique.THROTTLE not in censor.techniques:
            continue
        if censor.scoped and world.country_by_asn.get(client_asn) != censor.country_code:
            continue
        out.append((asn, 0.25))
    return out


def run_throttling_campaign(
    world: World, config: ThrottlingCampaignConfig
) -> List[ThroughputMeasurement]:
    """Simulate the M-Lab-analog campaign over ``world``.

    Requires the circumvention pseudo-domain to be registered so censor
    policies can match it; this function registers it idempotently under
    :class:`~repro.urls.categories.Category.CIRCUMVENTION`.
    """
    from repro.urls.categories import Category

    world.test_list.categories.register(
        _CIRCUMVENTION_PSEUDO_DOMAIN, Category.CIRCUMVENTION
    )
    rng = DeterministicRNG(config.seed, "throttling-campaign")
    servers = world.test_list.dest_asns[: config.num_servers]
    measurements: List[ThroughputMeasurement] = []
    for vantage in world.vantage_points:
        for server in servers:
            low, high = config.baseline_mbps_range
            baseline = rng.uniform(low, high)
            for day_start in range(config.start, config.end, DAY):
                for _ in range(config.tests_per_pair_per_day):
                    timestamp = day_start + rng.randrange(DAY)
                    if timestamp >= config.end:
                        continue
                    as_path = world.oracle.aspath_at(vantage.asn, server, timestamp)
                    if as_path is None:
                        continue
                    throttlers = _throttlers_on_path(
                        world, as_path, timestamp, vantage.asn
                    )
                    factor = min((f for _, f in throttlers), default=1.0)
                    noise = rng.gauss(1.0, config.noise_stddev_fraction)
                    throughput = max(0.1, baseline * factor * noise)
                    measurements.append(
                        ThroughputMeasurement(
                            timestamp=timestamp,
                            vantage_asn=vantage.asn,
                            server_asn=server,
                            as_path=tuple(as_path),
                            throughput_mbps=throughput,
                            baseline_mbps=baseline,
                            throttled_by=tuple(asn for asn, _ in throttlers),
                        )
                    )
    return measurements


def throughput_observations(
    measurements: Sequence[ThroughputMeasurement],
    detection_ratio: float = 0.5,
    use_historical_baseline: bool = True,
) -> List[Observation]:
    """Turn throughput tests into boolean tomography observations.

    A test is anomalous when its throughput falls below ``detection_ratio``
    of the pair's reference throughput.  With
    ``use_historical_baseline=True`` (default) the reference is the pair's
    long-term baseline — M-Lab holds years of pre-throttling history, so
    this is the realistic mode and it also detects pairs that were
    throttled for the whole campaign.  With ``False`` the reference is the
    campaign-local maximum, which is blind to always-throttled pairs (they
    then produce misleading *clean* clauses that exonerate the throttler —
    a genuine failure mode of short longitudinal windows, kept for the
    ablation in the tests).
    """
    best: Dict[Tuple[int, int], float] = {}
    for measurement in measurements:
        key = (measurement.vantage_asn, measurement.server_asn)
        best[key] = max(best.get(key, 0.0), measurement.throughput_mbps)
    observations: List[Observation] = []
    for index, measurement in enumerate(measurements):
        key = (measurement.vantage_asn, measurement.server_asn)
        reference = (
            measurement.baseline_mbps
            if use_historical_baseline
            else best[key]
        )
        throttled = measurement.throughput_mbps < detection_ratio * reference
        observations.append(
            Observation(
                url=f"ndt://AS{measurement.server_asn}/",
                anomaly=Anomaly.THROTTLE,
                detected=throttled,
                as_path=measurement.as_path,
                timestamp=measurement.timestamp,
                measurement_id=index,
            )
        )
    return observations


@dataclass
class ThrottlingLocalization:
    """Output of :func:`localize_throttlers`."""

    identified: List[int] = field(default_factory=list)
    potential: List[int] = field(default_factory=list)
    true_throttlers: List[int] = field(default_factory=list)
    problems_solved: int = 0
    unsat_problems: int = 0

    @property
    def precision(self) -> float:
        """Fraction of identified throttlers that truly throttle."""
        if not self.identified:
            return 0.0
        true = [asn for asn in self.identified if asn in self.true_throttlers]
        return len(true) / len(self.identified)


def localize_throttlers(
    world: World,
    config: ThrottlingCampaignConfig = ThrottlingCampaignConfig(),
    granularities: Sequence[Granularity] = (Granularity.DAY, Granularity.WEEK),
) -> ThrottlingLocalization:
    """End-to-end: campaign → observations → SAT problems → throttlers."""
    true_throttlers = deploy_throttlers(world, seed=config.seed)
    measurements = run_throttling_campaign(world, config)
    observations = throughput_observations(
        measurements, detection_ratio=config.throttle_detection_ratio
    )
    groups = split_observations(observations, granularities=granularities)
    result = ThrottlingLocalization(true_throttlers=true_throttlers)
    identified: set = set()
    potential: set = set()
    for key, group in groups.items():
        if not any(o.detected for o in group):
            continue
        solution = TomographyProblem(key, group).solve()
        result.problems_solved += 1
        if solution.status is SolutionStatus.UNSATISFIABLE:
            result.unsat_problems += 1
            continue
        identified |= solution.censors
        potential |= solution.potential_censors
    result.identified = sorted(identified)
    result.potential = sorted(potential - identified)
    return result


__all__ = [
    "ThrottlingCampaignConfig",
    "deploy_throttlers",
    "ThroughputMeasurement",
    "run_throttling_campaign",
    "throughput_observations",
    "localize_throttlers",
    "ThrottlingLocalization",
]
