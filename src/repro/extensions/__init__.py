"""The paper's stated future-work extensions (§5), implemented.

The conclusion names two follow-ups for the tomography machinery:

1. *"incorporate data obtained from external performance measurement
   datasets (e.g., data from M-Lab) to identify ASes responsible for
   throttling the bandwidth made available to specific protocols used for
   censorship circumvention"* — :mod:`repro.extensions.throttling` builds
   an M-Lab-analog throughput measurement stream, a relative-throughput
   anomaly detector, and feeds the resulting boolean observations into the
   unchanged :mod:`repro.core` pipeline under :attr:`Anomaly.THROTTLE`.

2. *"identify, at scale, the ASes responsible for blocking access to Tor
   bridges"* — :mod:`repro.extensions.tor_bridges` simulates bridge
   reachability probes (TCP connects to unlisted bridge addresses),
   with censors dropping SYNs to known-bridge addresses, and localizes the
   droppers through the same pipeline under :attr:`Anomaly.BRIDGE`.

Both extensions demonstrate the paper's claim that the approach "carries
over to other measurement databases": only the observation source changes;
clause construction, splitting, solving, and analysis are reused verbatim.
"""

from repro.extensions.throttling import (
    ThrottlingCampaignConfig,
    ThroughputMeasurement,
    localize_throttlers,
    run_throttling_campaign,
)
from repro.extensions.tor_bridges import (
    BridgeCampaignConfig,
    BridgeProbe,
    localize_bridge_blockers,
    run_bridge_campaign,
)

__all__ = [
    "ThroughputMeasurement",
    "ThrottlingCampaignConfig",
    "run_throttling_campaign",
    "localize_throttlers",
    "BridgeProbe",
    "BridgeCampaignConfig",
    "run_bridge_campaign",
    "localize_bridge_blockers",
]
