"""Minimal IPv4 address and prefix arithmetic.

Addresses are plain ``int`` in ``[0, 2**32)`` everywhere in the simulator —
formatting to dotted-quad happens only at presentation boundaries.  This
module is dependency-free and is shared by the topology layer (prefix
allocation, IP-to-AS mapping) and the packet simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

MAX_ADDRESS = 2**32 - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation to an integer address.

    >>> parse_ipv4("10.0.0.1")
    167772161
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not (0 <= octet <= 255):
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(address: int) -> str:
    """Format an integer address as dotted-quad.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not (0 <= address <= MAX_ADDRESS):
        raise ValueError(f"address out of range: {address}")
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mask_of(prefix_len: int) -> int:
    """The netmask for a prefix length.

    >>> hex(mask_of(24))
    '0xffffff00'
    """
    if not (0 <= prefix_len <= 32):
        raise ValueError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (MAX_ADDRESS << (32 - prefix_len)) & MAX_ADDRESS


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix ``network/length`` with the host bits zeroed."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not (0 <= self.length <= 32):
            raise ValueError(f"prefix length out of range: {self.length}")
        if self.network & ~mask_of(self.length) & MAX_ADDRESS:
            raise ValueError(
                f"host bits set in {format_ipv4(self.network)}/{self.length}"
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation.

        >>> Prefix.parse("192.0.2.0/24").length
        24
        """
        address, _, length = text.partition("/")
        if not length:
            raise ValueError(f"missing prefix length: {text!r}")
        return cls(parse_ipv4(address), int(length))

    def __contains__(self, address: int) -> bool:
        return (address & mask_of(self.length)) == self.network

    def contains_prefix(self, other: "Prefix") -> bool:
        """Whether ``other`` is fully inside this prefix."""
        return other.length >= self.length and other.network in self

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        """Lowest covered address (the network address)."""
        return self.network

    @property
    def last(self) -> int:
        """Highest covered address (the broadcast address)."""
        return self.network | (~mask_of(self.length) & MAX_ADDRESS)

    def host(self, index: int) -> int:
        """The ``index``-th address within the prefix (0-based).

        >>> format_ipv4(Prefix.parse("192.0.2.0/24").host(7))
        '192.0.2.7'
        """
        if not (0 <= index < self.num_addresses):
            raise ValueError(f"host index {index} outside /{self.length}")
        return self.network + index

    def subnets(self, new_length: int) -> Iterator["Prefix"]:
        """Iterate the subdivision of this prefix into /new_length pieces."""
        if new_length < self.length:
            raise ValueError("cannot subnet to a shorter length")
        step = 1 << (32 - new_length)
        for network in range(self.first, self.last + 1, step):
            yield Prefix(network, new_length)

    def __str__(self) -> str:
        return f"{format_ipv4(self.network)}/{self.length}"


def split_key(address: int, prefix_len: int) -> Tuple[int, int]:
    """Canonical ``(network, length)`` pair for LPM table keys."""
    return (address & mask_of(prefix_len), prefix_len)


__all__ = [
    "parse_ipv4",
    "format_ipv4",
    "mask_of",
    "Prefix",
    "split_key",
    "MAX_ADDRESS",
]
