"""Warn-once deprecation shims.

Old entry points superseded by :mod:`repro.api` keep working but emit one
:class:`DeprecationWarning` per process the first time they are called —
loud enough to steer migrations, quiet enough not to flood a sweep that
calls a shim thousands of times.
"""

from __future__ import annotations

import warnings
from typing import Set

_warned: Set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` is
    seen this process; return True when the warning actually fired."""
    if key in _warned:
        return False
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_warned() -> None:
    """Forget which keys have warned (test isolation only)."""
    _warned.clear()


__all__ = ["warn_once", "reset_warned"]
