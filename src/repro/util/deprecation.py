"""Warn-once deprecation shims.

Old entry points superseded by :mod:`repro.api` keep working but emit one
:class:`DeprecationWarning` per process the first time they are called —
loud enough to steer migrations, quiet enough not to flood a sweep that
calls a shim thousands of times.

The warning must point at the *shim's caller* — the line a user needs to
migrate — not at the shim or this module.  Shims sit at different call
depths (some warn straight from the deprecated function, some from a
nested helper or a delegating wrapper), so no single hardcoded
``stacklevel`` is right for all of them; by default the level is computed
by walking the stack past this module and past every consecutive frame of
the shim's own module.
"""

from __future__ import annotations

import sys
import warnings
from typing import Optional, Set

_warned: Set[str] = set()


def _caller_stacklevel() -> int:
    """The ``stacklevel`` (relative to :func:`warn_once`'s ``warn`` call)
    of the first frame outside this module and the shim's module."""
    own_file = __file__
    # Frame 0: this helper; 1: warn_once; 2: the shim function.
    try:
        frame = sys._getframe(2)
    except ValueError:  # pragma: no cover - no caller (interactive edge)
        return 2
    shim_file = frame.f_code.co_filename
    level = 2
    while frame is not None and frame.f_code.co_filename in (
        own_file,
        shim_file,
    ):
        frame = frame.f_back
        level += 1
    return level


def warn_once(
    key: str, message: str, stacklevel: Optional[int] = None
) -> bool:
    """Emit ``message`` as a DeprecationWarning the first time ``key`` is
    seen this process; return True when the warning actually fired.

    With ``stacklevel=None`` (the default) the warning is attributed to
    the first stack frame outside the calling shim's module — correct at
    any shim call depth.  Pass an explicit level only to override that.
    """
    if key in _warned:
        return False
    _warned.add(key)
    if stacklevel is None:
        stacklevel = _caller_stacklevel()
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset_warned() -> None:
    """Forget which keys have warned (test isolation only)."""
    _warned.clear()


__all__ = ["warn_once", "reset_warned"]
