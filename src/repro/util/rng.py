"""Deterministic randomness for reproducible simulations.

Every stochastic component (topology generation, churn events, traceroute
loss, detector noise, ...) draws from a :class:`DeterministicRNG` seeded by a
stable hash of the scenario seed plus a component label.  This keeps results
byte-identical across runs while letting components evolve independently:
adding randomness to one component does not shift the stream of another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a stable 64-bit sub-seed from ``base_seed`` and labels.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    process for strings.

    >>> derive_seed(1, "churn") == derive_seed(1, "churn")
    True
    >>> derive_seed(1, "churn") != derive_seed(1, "topology")
    True
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class DeterministicRNG(random.Random):
    """A :class:`random.Random` with a few simulation-friendly helpers."""

    def __init__(self, base_seed: int, *labels: object) -> None:
        super().__init__(derive_seed(base_seed, *labels))

    def chance(self, probability: float) -> bool:
        """Return True with the given probability.

        Probabilities outside [0, 1] are clamped, so callers can express
        "always"/"never" with 1.0/0.0 without edge-case handling.
        """
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        """Uniformly pick one item from a non-empty sequence."""
        if not items:
            raise ValueError("cannot pick from an empty sequence")
        return items[self.randrange(len(items))]

    def pick_weighted(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one item with the given (unnormalized) weights."""
        if not items:
            raise ValueError("cannot pick from an empty sequence")
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        return self.choices(items, weights=weights, k=1)[0]

    def subset(self, items: Iterable[T], probability: float) -> list[T]:
        """Return the sub-list of items each kept with ``probability``."""
        return [item for item in items if self.chance(probability)]

    def sample_at_most(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``min(k, len(items))`` items without replacement."""
        if k <= 0:
            return []
        return self.sample(list(items), min(k, len(items)))

    def exponential_jitter(self, mean: float, floor: float = 0.0) -> float:
        """An exponential deviate with the given mean, clamped below."""
        return max(floor, self.expovariate(1.0 / mean) if mean > 0 else floor)

    def fork(self, *labels: object) -> "DeterministicRNG":
        """Create an independent child stream labelled by ``labels``."""
        child = DeterministicRNG.__new__(DeterministicRNG)
        random.Random.__init__(child, derive_seed(self.randrange(2**63), *labels))
        return child


def stable_shuffle(items: Sequence[T], seed: int, *labels: object) -> list[T]:
    """Return a deterministically shuffled copy of ``items``."""
    rng = DeterministicRNG(seed, *labels, "shuffle")
    out = list(items)
    rng.shuffle(out)
    return out


__all__ = ["DeterministicRNG", "derive_seed", "stable_shuffle"]
