"""Lightweight stage timing for the end-to-end hot path.

A :class:`StageTimer` accumulates wall-clock seconds and call counts under
named stages ("campaign", "pipeline.solve", ...) plus free-form integer
counters (routing tables computed, unique CNFs solved).  It is woven
through the platform, the path oracle, and the localization pipeline so a
job run can report *where* its time went — the data behind the runner's
``perf`` report and the performance trajectory in ``BENCH_*.json``.

Since the observability layer landed, a timer is an **adapter view over a
:class:`~repro.obs.metrics.MetricsRegistry`**: stages live as
``repro_stage_seconds``/``repro_stage_calls`` counters labeled by stage,
``count()`` values as registry counters, and ``set_counter()`` values as
registry *gauges* — which is what fixed the historical merge bug where
overwrite-semantics counters were folded with ``+=`` and double-counted
when sharded snapshots were combined.  Pass a shared registry to surface
stage timings on the same exposition endpoint as everything else; the
default is a private one, and the legacy API is preserved verbatim.

Design constraints (unchanged):

- **Zero cost when absent.**  Every instrumented component holds
  ``timer: Optional[StageTimer] = None`` and guards with a truth test, so
  library users who never ask for timings pay one ``if``.
- **No effect on results.**  Timings never enter ``PipelineResult`` or the
  canonical (content-addressed) part of a job record; the store writes
  them to a separate non-canonical sidecar.  Byte-determinism of records
  is preserved.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, MetricsRegistry

# Registry names the adapter stores stages under (labeled by stage).
STAGE_SECONDS = "repro_stage_seconds"
STAGE_CALLS = "repro_stage_calls"


class StageTimer:
    """Accumulates per-stage wall time, call counts, and counters.

    >>> timer = StageTimer(clock=iter([0.0, 1.5]).__next__)
    >>> with timer.stage("solve"):
    ...     pass
    >>> timer.seconds("solve")
    1.5
    """

    __slots__ = ("_clock", "registry", "_stages", "_counters", "_gauges")

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        # Clock resolution: explicit argument, else the shared registry's
        # (so an injected test clock drives the timer too), else wall.
        if clock is None:
            clock = (
                registry.clock if registry is not None
                else time.perf_counter
            )
        self._clock = clock
        self.registry = (
            registry if registry is not None else MetricsRegistry(clock)
        )
        # Per-name handle memos: the hot paths (thousands of add() calls
        # per campaign) pay one dict lookup, not a registry get-or-create.
        self._stages: Dict[str, Tuple[Counter, Counter]] = {}
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}

    # -- stages ----------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entrant, accumulating)."""
        started = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - started)

    def _stage_handles(self, name: str) -> Tuple[Counter, Counter]:
        handles = self._stages.get(name)
        if handles is None:
            labels = {"stage": name}
            handles = self._stages[name] = (
                self.registry.counter(STAGE_SECONDS, labels),
                self.registry.counter(STAGE_CALLS, labels),
            )
        return handles

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate ``seconds`` under ``name`` without a context manager.

        The manual form exists for per-call hot loops (thousands of tests
        per campaign) where generator-based context managers would be the
        overhead being measured.
        """
        seconds_handle, calls_handle = self._stage_handles(name)
        seconds_handle.inc(seconds)
        calls_handle.inc(calls)

    def seconds(self, name: str) -> float:
        """Accumulated seconds under ``name`` (0.0 when never hit)."""
        handles = self._stages.get(name)
        return handles[0].value if handles is not None else 0.0

    def calls(self, name: str) -> int:
        """Number of accumulations under ``name``."""
        handles = self._stages.get(name)
        return handles[1].value if handles is not None else 0

    # -- counters --------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Bump the free-form counter ``name`` by ``value``."""
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = self.registry.counter(name)
        handle.inc(value)

    def set_counter(self, name: str, value: int) -> None:
        """Set ``name`` to ``value`` (overwrite semantics — a gauge).

        Gauges merge by overwrite, not addition: a table size reported by
        every shard must survive :meth:`merge` once, not ``shards`` times.
        """
        handle = self._gauges.get(name)
        if handle is None:
            handle = self._gauges[name] = self.registry.gauge(name)
        handle.set(value)

    def counter(self, name: str) -> int:
        """The current value of counter ``name`` (0 when never set)."""
        handle = self._counters.get(name)
        if handle is not None:
            return handle.value
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-compatible dump: stage seconds/calls, counters, gauges."""
        return {
            "stages": {
                name: {
                    "seconds": self._stages[name][0].value,
                    "calls": self._stages[name][1].value,
                }
                for name in sorted(self._stages)
            },
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from another job) into this timer.

        Stages and counters accumulate; gauges overwrite (last write
        wins).  Legacy snapshots (no ``"gauges"`` section) fold every
        counter additively, exactly as before.
        """
        for name, entry in snapshot.get("stages", {}).items():
            self.add(name, entry.get("seconds", 0.0), entry.get("calls", 0))
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_counter(name, value)


def maybe_stage(timer: Optional[StageTimer], name: str):
    """``timer.stage(name)`` or a no-op context, for optional-timer call sites."""
    if timer is not None:
        return timer.stage(name)
    return _NULL_CONTEXT


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


__all__ = ["StageTimer", "maybe_stage"]
