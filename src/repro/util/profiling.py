"""Lightweight stage timing for the end-to-end hot path.

A :class:`StageTimer` accumulates wall-clock seconds and call counts under
named stages ("campaign", "pipeline.solve", ...) plus free-form integer
counters (routing tables computed, unique CNFs solved).  It is woven
through the platform, the path oracle, and the localization pipeline so a
job run can report *where* its time went — the data behind the runner's
``perf`` report and the performance trajectory in ``BENCH_*.json``.

Design constraints:

- **Zero cost when absent.**  Every instrumented component holds
  ``timer: Optional[StageTimer] = None`` and guards with a truth test, so
  library users who never ask for timings pay one ``if``.
- **No effect on results.**  Timings never enter ``PipelineResult`` or the
  canonical (content-addressed) part of a job record; the store writes
  them to a separate non-canonical sidecar.  Byte-determinism of records
  is preserved.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional


class StageTimer:
    """Accumulates per-stage wall time, call counts, and counters.

    >>> timer = StageTimer(clock=iter([0.0, 1.5]).__next__)
    >>> with timer.stage("solve"):
    ...     pass
    >>> timer.seconds("solve")
    1.5
    """

    __slots__ = ("_clock", "_seconds", "_calls", "_counters")

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}

    # -- stages ----------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entrant, accumulating)."""
        started = self._clock()
        try:
            yield
        finally:
            self.add(name, self._clock() - started)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Accumulate ``seconds`` under ``name`` without a context manager.

        The manual form exists for per-call hot loops (thousands of tests
        per campaign) where generator-based context managers would be the
        overhead being measured.
        """
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    def seconds(self, name: str) -> float:
        """Accumulated seconds under ``name`` (0.0 when never hit)."""
        return self._seconds.get(name, 0.0)

    def calls(self, name: str) -> int:
        """Number of accumulations under ``name``."""
        return self._calls.get(name, 0)

    # -- counters --------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Bump the free-form counter ``name`` by ``value``."""
        self._counters[name] = self._counters.get(name, 0) + value

    def set_counter(self, name: str, value: int) -> None:
        """Set the counter ``name`` to ``value`` (overwrite semantics)."""
        self._counters[name] = value

    def counter(self, name: str) -> int:
        """The current value of counter ``name`` (0 when never set)."""
        return self._counters.get(name, 0)

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-compatible dump: stage seconds/calls plus counters."""
        return {
            "stages": {
                name: {
                    "seconds": self._seconds[name],
                    "calls": self._calls.get(name, 0),
                }
                for name in sorted(self._seconds)
            },
            "counters": dict(sorted(self._counters.items())),
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` (e.g. from another job) into this timer."""
        for name, entry in snapshot.get("stages", {}).items():
            self.add(name, entry.get("seconds", 0.0), entry.get("calls", 0))
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)


def maybe_stage(timer: Optional[StageTimer], name: str):
    """``timer.stage(name)`` or a no-op context, for optional-timer call sites."""
    if timer is not None:
        return timer.stage(name)
    return _NULL_CONTEXT


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


__all__ = ["StageTimer", "maybe_stage"]
