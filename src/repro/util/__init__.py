"""Shared utilities: simulated time, windows, and deterministic randomness.

The simulator runs on an integer clock of *seconds since the start of the
simulated measurement campaign*.  All time-bucketing used by the tomography
pipeline (per-day / per-week / per-month / per-year CNF construction) lives
in :mod:`repro.util.timeutil` so that every module buckets identically.
"""

from repro.util.profiling import StageTimer
from repro.util.rng import DeterministicRNG, derive_seed
from repro.util.timeutil import (
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    WEEK,
    YEAR,
    Granularity,
    TimeWindow,
    iter_windows,
    window_of,
)

__all__ = [
    "DeterministicRNG",
    "StageTimer",
    "derive_seed",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "MONTH",
    "YEAR",
    "Granularity",
    "TimeWindow",
    "iter_windows",
    "window_of",
]
