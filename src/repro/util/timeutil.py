"""Simulated-time utilities.

The measurement campaign runs on a simple integer clock measured in seconds
from time zero (the start of the campaign).  The paper constructs one CNF per
URL per anomaly per *time window*, at four granularities: day, week, month,
and year.  This module is the single source of truth for how timestamps are
bucketed into those windows.

A "month" is modelled as 30 days and a "year" as 365 days.  The tomography
results only depend on *consistent* bucketing, not on calendar arithmetic, so
fixed-size windows are both simpler and easier to reason about in tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

MINUTE = 60
HOUR = 60 * MINUTE
DAY = 24 * HOUR
WEEK = 7 * DAY
MONTH = 30 * DAY
YEAR = 365 * DAY


class Granularity(enum.Enum):
    """Time-window granularities used for CNF splitting (paper §3.1)."""

    DAY = "day"
    WEEK = "week"
    MONTH = "month"
    YEAR = "year"

    @property
    def seconds(self) -> int:
        """Window length in seconds."""
        return _GRANULARITY_SECONDS[self]

    @classmethod
    def all(cls) -> tuple["Granularity", ...]:
        """All granularities, finest first."""
        return (cls.DAY, cls.WEEK, cls.MONTH, cls.YEAR)


_GRANULARITY_SECONDS = {
    Granularity.DAY: DAY,
    Granularity.WEEK: WEEK,
    Granularity.MONTH: MONTH,
    Granularity.YEAR: YEAR,
}


@dataclass(frozen=True, order=True)
class TimeWindow:
    """A half-open interval ``[start, end)`` of simulated seconds.

    Windows are aligned: ``start`` is always an integer multiple of the
    window length, so the window containing a timestamp is unique.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty window: [{self.start}, {self.end})")

    @property
    def length(self) -> int:
        """Window length in seconds."""
        return self.end - self.start

    def contains(self, timestamp: int) -> bool:
        """Whether ``timestamp`` falls inside this window."""
        return self.start <= timestamp < self.end

    @property
    def index(self) -> int:
        """Ordinal of this window among same-length aligned windows."""
        return self.start // self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeWindow({self.start}, {self.end})"


def window_of(timestamp: int, granularity: Granularity) -> TimeWindow:
    """Return the aligned window of ``granularity`` containing ``timestamp``.

    >>> window_of(0, Granularity.DAY)
    TimeWindow(0, 86400)
    >>> window_of(90000, Granularity.DAY)
    TimeWindow(86400, 172800)
    """
    if timestamp < 0:
        raise ValueError(f"negative timestamp: {timestamp}")
    size = granularity.seconds
    start = (timestamp // size) * size
    return TimeWindow(start, start + size)


def iter_windows(
    start: int, end: int, granularity: Granularity
) -> Iterator[TimeWindow]:
    """Yield every aligned window of ``granularity`` overlapping [start, end).

    >>> [w.start for w in iter_windows(0, 3 * DAY, Granularity.DAY)]
    [0, 86400, 172800]
    """
    if end <= start:
        return
    window = window_of(start, granularity)
    while window.start < end:
        yield window
        window = TimeWindow(window.end, window.end + granularity.seconds)
