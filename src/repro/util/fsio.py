"""Filesystem primitives shared across subsystems."""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tempfile + rename).

    Readers never observe a partial file: the content lands in a
    same-directory temp file first and is moved into place with
    ``os.replace``.  Used by the result store's records and the session
    checkpoint files.
    """
    handle, tmp_path = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as tmp:
            tmp.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


__all__ = ["atomic_write_bytes"]
