"""Command-line interface: ``repro-serve`` / ``python -m repro.serve``.

The operational entry point for the always-on localization daemon: bind
the wire-protocol listener, resume any checkpointed tenants from
``--state-dir``, serve until SIGTERM/SIGINT, then checkpoint every
tenant and exit 0.  The Makefile's ``serve-start``/``serve-stop``/
``serve-status`` targets wrap this with a pidfile and the ``/healthz``
probe; clients are ``repro-stream --connect HOST:PORT`` and the
:mod:`repro.serve.client` library.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from typing import Optional, Sequence

from repro.api.transport import TransportError
from repro.obs import log as obslog
from repro.serve.server import ServeDaemon
from repro.serve.tenants import AdmissionPolicy

DEFAULT_LISTEN = "127.0.0.1:7700"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Always-on multi-tenant localization daemon: many "
            "campaigns, one process, reconnect-safe streams."
        ),
    )
    parser.add_argument(
        "--listen",
        default=DEFAULT_LISTEN,
        metavar="HOST:PORT",
        help=(
            "wire-protocol listen address (default: "
            f"{DEFAULT_LISTEN}; port 0 picks a free one)"
        ),
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "durable tenant checkpoints live here; on startup every "
            "*.serve.json in DIR is resumed (omit for a stateless "
            "daemon that only checkpoints in memory)"
        ),
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics, /healthz and /statusz over HTTP on this "
            "port (0 picks a free one); /statusz carries the "
            "per-tenant rollup"
        ),
    )
    parser.add_argument(
        "--pidfile",
        default=None,
        metavar="FILE",
        help="write the daemon pid here (removed on clean shutdown)",
    )
    parser.add_argument(
        "--max-tenants",
        type=int,
        default=16,
        metavar="N",
        help="concurrent campaign limit (default: 16)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=32,
        metavar="N",
        help=(
            "per-tenant apply-queue bound in frames; a full queue "
            "stops reading that tenant's sockets — backpressure "
            "reaches the client as TCP flow control (default: 32)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=32,
        metavar="N",
        help=(
            "durably checkpoint a tenant every N applied frames "
            "(0: only at shutdown; default: 32)"
        ),
    )
    parser.add_argument(
        "--event-buffer",
        type=int,
        default=65536,
        metavar="N",
        help=(
            "per-tenant verdict-event replay ring size "
            "(default: 65536)"
        ),
    )
    obslog.add_log_arguments(parser)
    return parser


async def _amain(daemon: ServeDaemon, quiet: bool) -> None:
    await daemon.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, daemon.request_stop)
    if not quiet:
        print(f"repro-serve listening on {daemon.address}", flush=True)
        if daemon.metrics_server is not None:
            print(
                f"telemetry: http://{daemon.metrics_server.address}"
                f"/statusz",
                flush=True,
            )
    await daemon.serve_forever()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obslog.configure_from_args(args)
    try:
        policy = AdmissionPolicy(
            max_tenants=args.max_tenants,
            queue_depth=args.queue_depth,
            checkpoint_every=args.checkpoint_every,
            event_buffer=args.event_buffer,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon = ServeDaemon(
        listen=args.listen,
        state_dir=args.state_dir,
        policy=policy,
        metrics_port=args.metrics_port,
        pidfile=args.pidfile,
    )
    try:
        asyncio.run(_amain(daemon, quiet=False))
    except (TransportError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


__all__ = ["DEFAULT_LISTEN", "build_parser", "main"]
