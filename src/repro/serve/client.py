"""The serve daemon's client library: a resilient ingest stream.

A :class:`ServeClient` is the thin edge of a campaign: it converts
measurements locally (the same one-tally, one-memo-cache semantics the
sharded parent applies), batches observations into sequenced chunks,
and ships them to a :class:`~repro.serve.server.ServeDaemon` with an
outstanding-ack window for flow control.  Its whole reliability story
is a **resend buffer** keyed by chunk sequence:

- every frame is buffered *before* it is sent;
- a per-chunk ``ack`` only moves the flow-control window — it means
  "applied in memory", which a daemon crash erases;
- only a ``checkpoint_ack`` (the daemon's durable watermark) truncates
  the buffer;
- on any transport failure the client re-dials, re-attaches with its
  resume token, prunes the buffer to the daemon's ``applied_seq``, and
  re-sends the rest — and because the daemon acks-but-skips sequences
  it already applied, the observation sequence the engine folds over
  is identical no matter how many times the TCP stream died.

That idempotence is what the byte-identity tests pin: inline drain ==
served drain, through client reconnects and daemon restarts alike.

:class:`ServeSubscriber` is the read side — a verdict-event stream with
a from-sequence cursor, so a subscriber that reconnects never double
sees an event.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.api import wire
from repro.api.config import SessionConfig
from repro.api.transport import SocketTransport, TransportError, dial
from repro.core.observations import DiscardStats, Observation, observations_of
from repro.core.pipeline import PipelineResult
from repro.iclab.measurement import Measurement
from repro.obs import log as obslog
from repro.serve.tenants import ServeError
from repro.stream.checkpoint import discard_to_dict
from repro.stream.events import VerdictEvent

_log = obslog.get_logger("serve.client")

# Same reply-window bound as the sharded backend's parent: enough to
# keep the pipe full, small enough that backpressure reaches the source.
MAX_OUTSTANDING = 8

# The one-line hint every connect failure carries.
DAEMON_HINT = (
    "is repro-serve running on this address? start it with "
    "`make serve-start` (or `repro-serve --listen HOST:PORT`)"
)


def dial_daemon(
    address: str, retry_for: float = 10.0
) -> SocketTransport:
    """Dial a serve daemon; one actionable line on failure."""
    return dial(
        address,
        retry_for=retry_for,
        peer="serve daemon",
        hint=DAEMON_HINT,
    )


class ServeClient:
    """One campaign's sequenced, reconnect-safe stream to the daemon.

    ``config`` (a :class:`SessionConfig`) creates the campaign on first
    attach; pass ``None`` to join an existing one.  ``ip2as`` is needed
    only for :meth:`ingest_measurement` (client-side conversion);
    pre-converted :meth:`ingest_observation` works without it.
    ``on_event`` receives :class:`VerdictEvent` pushes when
    ``want_events`` (deduplicated across reconnects by sequence).
    """

    def __init__(
        self,
        address: str,
        campaign: str,
        config: Optional[SessionConfig] = None,
        ip2as=None,
        want_events: bool = False,
        on_event: Optional[Callable[[VerdictEvent], None]] = None,
        retry_for: float = 10.0,
        window: int = MAX_OUTSTANDING,
    ) -> None:
        self.address = address
        self.campaign = campaign
        self.config = config
        self._ip2as = ip2as
        self._anomalies = (
            config.pipeline_config().anomalies
            if config is not None
            else None
        )
        self._chunk_size = (
            config.execution.chunk_size if config is not None else 256
        )
        self.want_events = want_events
        self.on_event = on_event
        self.retry_for = retry_for
        self.window = window
        self.discard = DiscardStats()
        self._conversion_cache: Dict = {}
        self._transport: Optional[SocketTransport] = None
        self.resume_token: Optional[str] = None
        self._seq = 0                  # last sequence assigned
        self._acked = 0                # daemon's in-memory watermark
        self._durable = 0              # daemon's checkpointed watermark
        self._buffer: "OrderedDict[int, Tuple]" = OrderedDict()
        self._pending: List[Tuple] = []
        self._last_event_seq = 0
        self.result: Optional[PipelineResult] = None
        self.reconnects = 0

    # -- connection management ---------------------------------------------

    def attach(self) -> int:
        """Connect and attach; returns the daemon's applied watermark."""
        transport = dial_daemon(self.address, retry_for=self.retry_for)
        transport.send(
            wire.attach_frame(
                self.campaign,
                self.config.to_dict() if self.config is not None else None,
                self.want_events,
                resume_token=self.resume_token,
            )
        )
        reply = transport.recv()
        if reply and reply[0] == "error":
            transport.close()
            raise ServeError(reply[1])
        _campaign, token, applied_seq, _options = wire.check_attached(
            reply
        )
        self._transport = transport
        self.resume_token = token
        self._sync_to(applied_seq)
        return applied_seq

    def _sync_to(self, applied_seq: int) -> None:
        """Prune the buffer to the daemon's watermark, resend the rest."""
        while self._buffer and next(iter(self._buffer)) <= applied_seq:
            self._buffer.popitem(last=False)
        if applied_seq > self._acked:
            self._acked = applied_seq
        if applied_seq > self._durable:
            # The daemon restored/holds this much — durable by definition.
            self._durable = applied_seq
        for frame in self._buffer.values():
            self._transport.send(frame)

    def _reconnect(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None
        self.reconnects += 1
        _log.info(
            "serve.client.reconnect",
            extra=obslog.fields(
                campaign=self.campaign,
                address=self.address,
                buffered=len(self._buffer),
            ),
        )
        self.attach()

    def close(self) -> None:
        """Detach politely (the tenant lives on in the daemon)."""
        if self._transport is not None:
            try:
                self._transport.send(("detach",))
            except (EOFError, OSError):
                pass
            self._transport.close()
            self._transport = None

    def __enter__(self) -> "ServeClient":
        self.attach()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the sequenced send/receive core -----------------------------------

    def _post(self, frame: Tuple) -> None:
        """Buffer-then-send one sequenced frame, then honor the window."""
        self._buffer[frame[1]] = frame
        if self._transport is None:
            self.attach()
        try:
            self._transport.send(frame)
        except (EOFError, OSError):
            self._reconnect()   # resends the buffer, this frame included
        while self._seq - self._acked >= self.window:
            self._handle_one_reply()

    def _handle_one_reply(self) -> Tuple:
        while True:
            try:
                message = self._transport.recv()
            except (EOFError, OSError):
                self._reconnect()
                continue
            break
        return self._dispatch(message)

    def _dispatch(self, message: Tuple) -> Tuple:
        kind = message[0]
        if kind == "ack":
            if message[1] > self._acked:
                self._acked = message[1]
        elif kind == "checkpoint_ack":
            durable = message[1]
            if durable > self._durable:
                self._durable = durable
            while self._buffer and next(iter(self._buffer)) <= durable:
                self._buffer.popitem(last=False)
        elif kind == "events":
            if self.on_event is not None:
                for payload in message[1]:
                    sequence = payload[wire.EVENT_SEQUENCE_INDEX]
                    if sequence <= self._last_event_seq:
                        continue   # reconnect overlap — already seen
                    self._last_event_seq = sequence
                    self.on_event(wire.event_from_wire(payload))
        elif kind == "result":
            self.result = message[1]
        elif kind == "error":
            raise ServeError(message[1])
        else:
            raise ServeError(
                f"unexpected frame {kind!r} from the daemon"
            )
        return message

    # -- ingestion surface --------------------------------------------------

    def ingest_measurement(self, measurement: Measurement) -> None:
        """Convert locally (one tally, one memo cache — the sharded
        parent's exact semantics) and buffer the observations."""
        if self._ip2as is None:
            raise RuntimeError(
                "ingest_measurement needs the client constructed with "
                "an ip2as database; use ingest_observation for "
                "pre-converted streams"
            )
        converted = observations_of(
            measurement,
            self._ip2as,
            anomalies=self._anomalies,
            stats=self.discard,
            conversion_cache=self._conversion_cache,
        )
        for observation in converted:
            self.ingest_observation(observation)

    def ingest_observation(self, observation: Observation) -> None:
        self._pending.append(wire.observation_to_wire(observation))
        if len(self._pending) >= self._chunk_size:
            self.flush()

    def flush(self) -> None:
        """Ship the pending observations as one sequenced chunk."""
        if not self._pending:
            return
        self._seq += 1
        self._post(("ingest", self._seq, self._pending))
        self._pending = []

    def advance(self, timestamp: int) -> None:
        """Push the campaign watermark forward (keep-alive)."""
        self.flush()
        self._seq += 1
        self._post(("advance", self._seq, timestamp))

    def wait_for_acks(self) -> None:
        """Block until every sent frame is applied daemon-side.

        Quiesces the tenant: when this returns, the daemon's applier
        has finished every chunk this client sent (tests use it before
        poking daemon internals; a source can use it as a barrier)."""
        while self._acked < self._seq:
            self._handle_one_reply()

    def drain(self) -> PipelineResult:
        """Flush, ship the discard tallies, and wait for the result.

        The daemon caches the result per tenant, so a drain retried
        across a reconnect returns the same object.
        """
        if self.result is not None:
            return self.result
        self.flush()
        self._seq += 1
        self._post(("drain", self._seq, discard_to_dict(self.discard)))
        while self.result is None:
            self._handle_one_reply()
        return self.result


class ServeSubscriber:
    """A reconnecting verdict-event reader for one campaign.

    Tracks the last event sequence it has yielded and resubscribes from
    it, so a dropped TCP stream costs a reconnect, never a duplicate or
    a gap (within the daemon's replay ring).
    """

    def __init__(
        self,
        address: str,
        campaign: str,
        from_sequence: int = 0,
        retry_for: float = 10.0,
    ) -> None:
        self.address = address
        self.campaign = campaign
        self.cursor = from_sequence
        self.retry_for = retry_for
        self._transport: Optional[SocketTransport] = None
        self.reconnects = 0

    def _connect(self) -> None:
        transport = dial_daemon(self.address, retry_for=self.retry_for)
        transport.send(wire.subscribe_frame(self.campaign, self.cursor))
        reply = transport.recv()
        if reply and reply[0] == "error":
            transport.close()
            raise ServeError(reply[1])
        if not reply or reply[0] != "subscribed":
            transport.close()
            raise ServeError(
                f"expected a subscribed reply, got {reply[:1]!r}"
            )
        self._transport = transport

    def events(
        self,
        stop_after: Optional[int] = None,
        reconnect: bool = True,
    ) -> Iterator[VerdictEvent]:
        """Yield events as they arrive; resubscribe on stream death.

        ``stop_after`` ends the iterator once that many events have
        been yielded (tests); otherwise it runs until :meth:`close` or
        a failed reconnect.
        """
        yielded = 0
        if self._transport is None:
            self._connect()
        while True:
            try:
                message = self._transport.recv()
            except (EOFError, OSError):
                if not reconnect:
                    return
                self._transport = None
                self.reconnects += 1
                try:
                    self._connect()
                except (TransportError, ServeError):
                    return
                continue
            if message[0] == "error":
                raise ServeError(message[1])
            if message[0] != "events":
                continue
            for payload in message[1]:
                sequence = payload[wire.EVENT_SEQUENCE_INDEX]
                if sequence <= self.cursor:
                    continue   # replay overlap after a reconnect
                self.cursor = sequence
                yield wire.event_from_wire(payload)
                yielded += 1
                if stop_after is not None and yielded >= stop_after:
                    return

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def __enter__(self) -> "ServeSubscriber":
        if self._transport is None:
            self._connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def stream_campaign(
    address: str,
    campaign: str,
    config: SessionConfig,
    want_events: bool = False,
    on_event: Optional[Callable[[VerdictEvent], None]] = None,
    progress_every: int = 0,
    retry_for: float = 10.0,
) -> Tuple[PipelineResult, ServeClient]:
    """Run a config's campaign locally, streaming it through the daemon.

    The thin-client shape behind ``repro-stream --connect``: the world
    builds client-side (it is the *measurement source*), every
    measurement ships to the daemon as it is produced, and the drain
    comes back as the daemon's :class:`PipelineResult` — byte-identical
    to running the same config inline.
    """
    from repro.scenario.world import build_world

    world = build_world(config.scenario_config())
    client = ServeClient(
        address,
        campaign,
        config=config,
        ip2as=world.ip2as,
        want_events=want_events,
        on_event=on_event,
        retry_for=retry_for,
    )
    client.attach()
    try:
        world.platform.add_listener(client.ingest_measurement)
        try:
            world.platform.run_campaign(progress_every=progress_every)
        finally:
            world.platform.remove_listener(client.ingest_measurement)
        result = client.drain()
    finally:
        client.close()
    return result, client


__all__ = [
    "DAEMON_HINT",
    "MAX_OUTSTANDING",
    "ServeClient",
    "ServeSubscriber",
    "dial_daemon",
    "stream_campaign",
]
