"""Tenant sessions: the daemon's synchronous, per-campaign core.

A :class:`Tenant` is one campaign's :class:`~repro.api.session.
LocalizationSession` plus the bookkeeping that makes it safe to drive
over a lossy network: a client-monotone *chunk sequence* with an
applied watermark (re-sent chunks at or below it are acknowledged but
skipped — exactly-once application under at-least-once delivery), a
bounded ring of verdict events for subscriber replay, and a durable
state document that embeds the ordinary session checkpoint next to the
serve-side watermarks, so a restarted daemon resumes every tenant and a
reconnecting client learns precisely which buffered chunks to re-send.

Everything here is synchronous and single-threaded *per tenant*: the
asyncio server (:mod:`repro.serve.server`) gives each tenant a
one-thread executor and funnels every session-touching call through it,
so the engine never sees concurrent ingestion.  The byte-identity
argument is the same one the sharded backend's recovery tests pin: the
engine is a pure fold over the observation sequence, the sequence
numbers guarantee the daemon applies the same sequence exactly once,
and checkpoint/restore re-emits identical state — so a drain through
the daemon, through any number of client reconnects and daemon
restarts, equals an uninterrupted inline drain byte for byte.
"""

from __future__ import annotations

import json
import re
import secrets
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api import wire
from repro.api.checkpoint import CHECKPOINT_FORMAT
from repro.api.config import SessionConfig
from repro.api.session import LocalizationSession
from repro.core.pipeline import PipelineResult
from repro.obs import log as obslog
from repro.stream.checkpoint import (
    discard_from_dict,
    state_summary,
)
from repro.stream.events import VerdictEvent
from repro.util.fsio import atomic_write_bytes

_log = obslog.get_logger("serve.tenants")

# Versions the "serve" section of a tenant state document (the embedded
# config/engine payload is versioned by CHECKPOINT_FORMAT).
SERVE_STATE_FORMAT = 1

# Tenant state files in --state-dir: one per campaign.
STATE_SUFFIX = ".serve.json"

# Campaign ids become file names, label values, and log fields — keep
# them to one unambiguous shape instead of escaping in three places.
_CAMPAIGN_OK = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ServeError(RuntimeError):
    """A tenant-level protocol violation (reported to the client)."""


class AdmissionError(ServeError):
    """The daemon refused an attach (capacity, ownership, bad id)."""


class AdmissionPolicy:
    """The daemon's capacity and durability knobs, in one place.

    ``max_tenants`` bounds concurrent campaigns; ``queue_depth`` bounds
    each tenant's apply queue in frames (the reader stops consuming the
    socket when it is full — backpressure reaches the client as TCP
    flow control); ``checkpoint_every`` is the durable-checkpoint
    cadence in applied frames (0 checkpoints only at shutdown);
    ``event_buffer`` bounds the per-tenant verdict-event replay ring.
    """

    def __init__(
        self,
        max_tenants: int = 16,
        queue_depth: int = 32,
        checkpoint_every: int = 32,
        event_buffer: int = 65536,
    ) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be positive")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if event_buffer < 1:
            raise ValueError("event_buffer must be positive")
        self.max_tenants = max_tenants
        self.queue_depth = queue_depth
        self.checkpoint_every = checkpoint_every
        self.event_buffer = event_buffer


class Tenant:
    """One campaign's session plus its serve-side bookkeeping.

    Construct through :class:`TenantRegistry` — it enforces admission
    and knows how to resume from a state document.  All methods that
    touch the session (:meth:`apply`, :meth:`checkpoint`) must run on
    :attr:`executor` — the server guarantees that.
    """

    def __init__(
        self,
        campaign: str,
        session: LocalizationSession,
        policy: AdmissionPolicy,
        resume_token: Optional[str] = None,
        applied_seq: int = 0,
        registry=None,
    ) -> None:
        self.campaign = campaign
        self.session = session
        self.policy = policy
        self.resume_token = (
            resume_token
            if resume_token is not None
            else secrets.token_hex(8)
        )
        self.applied_seq = applied_seq
        self.received_seq = applied_seq
        self.checkpoint_seq = applied_seq
        self.frames_since_checkpoint = 0
        self.failed: Optional[str] = None
        self.result: Optional[PipelineResult] = None
        # (event sequence, wire tuple) — replay source for subscribers.
        self.events: deque = deque(maxlen=policy.event_buffer)
        self.last_event_seq = 0
        # The server installs a loop-threadsafe wakeup for subscribers.
        self.on_event: Optional[Callable[["Tenant"], None]] = None
        # One thread: the session is single-threaded by construction.
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"tenant-{campaign}"
        )
        # Per-tenant elasticity: polled on the tenant executor after
        # every applied frame, so a rebalance can never race ingestion.
        self.autoscaler = (
            session.autoscaler()
            if session.config.execution.autoscale.enabled
            else None
        )
        self._gauges = None
        if registry is not None:
            labels = {"tenant": campaign}
            self._gauges = {
                "up": registry.gauge("repro_serve_tenant_up", labels),
                "received": registry.gauge(
                    "repro_serve_received_seq", labels
                ),
                "applied": registry.gauge(
                    "repro_serve_applied_seq", labels
                ),
                "checkpointed": registry.gauge(
                    "repro_serve_checkpoint_seq", labels
                ),
                "lag": registry.gauge("repro_serve_lag_frames", labels),
                "events": registry.gauge(
                    "repro_serve_events_buffered", labels
                ),
                "checkpoints": registry.counter(
                    "repro_serve_checkpoints_total", labels
                ),
                "frames": {},
            }
            self._frame_labels = labels
            self._registry = registry
            self._gauges["up"].set(1)
        else:
            self._registry = None

    # -- event capture -----------------------------------------------------

    def _capture_event(self, event: VerdictEvent) -> None:
        self.events.append((event.sequence, wire.event_to_wire(event)))
        if event.sequence > self.last_event_seq:
            self.last_event_seq = event.sequence
        if self._gauges is not None:
            self._gauges["events"].set(len(self.events))
        hook = self.on_event
        if hook is not None:
            hook(self)

    def events_after(self, sequence: int) -> List[Tuple]:
        """Buffered event tuples with sequence strictly above
        ``sequence``, oldest first."""
        return [
            payload for seq, payload in self.events if seq > sequence
        ]

    # -- gauge upkeep ------------------------------------------------------

    def note_received(self, seq: int) -> None:
        """Record a frame's arrival (called off the reader, pre-apply)."""
        if seq > self.received_seq:
            self.received_seq = seq
        if self._gauges is not None:
            self._gauges["received"].set(self.received_seq)
            self._gauges["lag"].set(
                max(0, self.received_seq - self.applied_seq)
            )

    def _note_applied(self, kind: str) -> None:
        if self._gauges is None:
            return
        self._gauges["applied"].set(self.applied_seq)
        self._gauges["lag"].set(
            max(0, self.received_seq - self.applied_seq)
        )
        counters = self._gauges["frames"]
        counter = counters.get(kind)
        if counter is None:
            counter = counters[kind] = self._registry.counter(
                "repro_serve_frames_total",
                {**self._frame_labels, "kind": kind},
            )
        counter.inc()

    # -- the apply surface (tenant-executor only) --------------------------

    def apply(self, message: Tuple) -> Tuple[str, Any]:
        """Apply one sequenced frame; returns the reply ``(kind, value)``.

        ``("ack", seq)`` for ingest/advance, ``("result", result)`` for
        drain.  A frame at or below the applied watermark is skipped but
        still answered — that idempotence is the whole reconnect story.
        Raises :class:`ServeError` on a sequence gap (the client and
        daemon have irreconcilably diverged — better loud than subtly
        wrong).
        """
        if self.failed is not None:
            raise ServeError(
                f"tenant {self.campaign} failed: {self.failed}"
            )
        kind = message[0]
        seq = message[1]
        if kind == "drain":
            return ("result", self._drain(seq, message[2]))
        if seq <= self.applied_seq:
            return ("ack", seq)
        if seq != self.applied_seq + 1:
            raise ServeError(
                f"sequence gap for {self.campaign}: expected "
                f"{self.applied_seq + 1}, got {seq} — the client "
                f"truncated past the daemon's durable watermark"
            )
        try:
            if kind == "ingest":
                session = self.session
                for payload in message[2]:
                    session.ingest_observation(
                        wire.observation_from_wire(payload)
                    )
            elif kind == "advance":
                self.session.advance(message[2])
            else:
                raise ServeError(f"unknown serve frame kind {kind!r}")
        except ServeError:
            raise
        except Exception as exc:
            self.fail(f"{type(exc).__name__}: {exc}")
            raise ServeError(
                f"tenant {self.campaign} failed applying {kind} "
                f"{seq}: {exc}"
            ) from exc
        self.applied_seq = seq
        self.frames_since_checkpoint += 1
        self._note_applied(kind)
        self._autoscale()
        return ("ack", seq)

    def _autoscale(self) -> None:
        scaler = self.autoscaler
        if scaler is None or self.drained or self.failed is not None:
            return
        try:
            action = scaler.poll()
        except Exception as exc:
            # A rebalance that died mid-flight may have extracted state
            # into worker stashes without committing — better loud than
            # a subtly wrong drain (the byte-identity contract).
            self.fail(f"autoscale: {type(exc).__name__}: {exc}")
            return
        if action is not None:
            _log.info(
                "serve.tenant.autoscale",
                extra=obslog.fields(
                    tenant=self.campaign,
                    direction=action,
                    shards=scaler.actions[-1][1],
                ),
            )

    def _drain(self, seq: int, discard_payload) -> PipelineResult:
        if self.result is not None:
            return self.result
        try:
            if discard_payload:
                self.session.backend.merge_discard_stats(
                    discard_from_dict(discard_payload)
                )
            self.result = self.session.drain()
        except Exception as exc:
            self.fail(f"{type(exc).__name__}: {exc}")
            raise ServeError(
                f"tenant {self.campaign} failed draining: {exc}"
            ) from exc
        if seq > self.applied_seq:
            self.applied_seq = seq
            self._note_applied("drain")
        _log.info(
            "serve.tenant.drain",
            extra=obslog.fields(
                tenant=self.campaign,
                problems=len(self.result.solutions),
                censors=len(self.result.identified_censor_asns),
            ),
        )
        return self.result

    def fail(self, reason: str) -> None:
        """Mark the tenant failed; ``/healthz`` flips 503 on the gauge."""
        self.failed = reason
        if self._gauges is not None:
            self._gauges["up"].set(0)
        _log.error(
            "serve.tenant.failed",
            extra=obslog.fields(tenant=self.campaign, reason=reason),
        )

    # -- durability (tenant-executor only) ---------------------------------

    @property
    def drained(self) -> bool:
        return self.result is not None

    def due_for_checkpoint(self) -> bool:
        every = self.policy.checkpoint_every
        return (
            every > 0
            and self.frames_since_checkpoint >= every
            and not self.drained
            and self.failed is None
        )

    def state_document(self) -> Dict[str, Any]:
        """The durable form: an ordinary checkpoint document plus the
        serve watermarks, one JSON object."""
        return {
            "format": CHECKPOINT_FORMAT,
            "config": self.session.config.to_dict(),
            "engine": self.session.backend.state(),
            "serve": {
                "format": SERVE_STATE_FORMAT,
                "campaign": self.campaign,
                "resume_token": self.resume_token,
                "applied_seq": self.applied_seq,
                "event_seq": self.last_event_seq,
            },
        }

    def checkpoint(self, state_dir: Path) -> int:
        """Write the tenant's state atomically; returns the durable seq.

        Skipped (returning the previous watermark) once drained or
        failed — there is nothing left worth resuming.
        """
        if self.drained or self.failed is not None:
            return self.checkpoint_seq
        document = self.state_document()
        atomic_write_bytes(
            state_path(state_dir, self.campaign),
            json.dumps(document, sort_keys=True).encode("utf-8"),
        )
        self.checkpoint_seq = self.applied_seq
        self.frames_since_checkpoint = 0
        if self._gauges is not None:
            self._gauges["checkpointed"].set(self.checkpoint_seq)
            self._gauges["checkpoints"].inc()
        _log.info(
            "serve.tenant.checkpoint",
            extra=obslog.fields(
                tenant=self.campaign, applied_seq=self.applied_seq
            ),
        )
        return self.checkpoint_seq

    def discard_state(self, state_dir: Path) -> None:
        """Drop the durable state (after a successful drain — a
        restarted daemon must not resurrect a finished campaign)."""
        try:
            state_path(state_dir, self.campaign).unlink()
        except FileNotFoundError:
            pass

    def close(self) -> None:
        try:
            self.session.close()
        finally:
            self.executor.shutdown(wait=False)


def state_path(state_dir: Path, campaign: str) -> Path:
    return Path(state_dir) / f"{campaign}{STATE_SUFFIX}"


class TenantRegistry:
    """Admission control plus campaign-id → :class:`Tenant` lookup.

    Not thread-safe by itself: the server calls it from the event loop
    only (tenant *construction* — world build, engine restore — is
    pushed to an executor by the caller; see :meth:`admit` /
    :meth:`build`).
    """

    def __init__(
        self, policy: Optional[AdmissionPolicy] = None, registry=None
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.tenants: Dict[str, Tenant] = {}
        self.metrics = registry
        self._tenants_gauge = (
            registry.gauge("repro_serve_tenants")
            if registry is not None
            else None
        )
        self._rejected: Dict[str, Any] = {}

    def _reject(self, reason: str, message: str) -> AdmissionError:
        if self.metrics is not None:
            counter = self._rejected.get(reason)
            if counter is None:
                counter = self._rejected[reason] = self.metrics.counter(
                    "repro_serve_rejected_total", {"reason": reason}
                )
            counter.inc()
        return AdmissionError(message)

    def admit(
        self,
        campaign: str,
        config_payload: Optional[Dict[str, Any]],
        resume_token: Optional[str],
    ) -> Optional[Tenant]:
        """Validate an attach; returns the existing tenant or ``None``
        when a new one must be built (via :meth:`build`, off-loop).

        Raises :class:`AdmissionError` on a malformed campaign id, a
        resume-token mismatch (the campaign belongs to another client),
        a config-less attach to an unknown campaign, or a full daemon.
        """
        if not _CAMPAIGN_OK.match(campaign or ""):
            raise self._reject(
                "bad_campaign",
                f"campaign id must match {_CAMPAIGN_OK.pattern}, got "
                f"{campaign!r}",
            )
        tenant = self.tenants.get(campaign)
        if tenant is not None:
            if resume_token is not None and (
                resume_token != tenant.resume_token
            ):
                raise self._reject(
                    "token_mismatch",
                    f"campaign {campaign!r} exists with a different "
                    f"resume token — pick another campaign id",
                )
            return tenant
        if config_payload is None:
            raise self._reject(
                "unknown_campaign",
                f"campaign {campaign!r} is not attached and no config "
                f"was supplied to create it",
            )
        if len(self.tenants) >= self.policy.max_tenants:
            raise self._reject(
                "capacity",
                f"daemon is at capacity ({self.policy.max_tenants} "
                f"tenants); detach one or raise --max-tenants",
            )
        return None

    def build(
        self,
        campaign: str,
        config_payload: Dict[str, Any],
    ) -> Tenant:
        """Construct a fresh tenant (expensive: builds the world).

        Call off the event loop; then :meth:`register` on it.
        """
        config = SessionConfig.from_dict(config_payload)
        session = LocalizationSession(config)
        return self._wire_up(campaign, session)

    def _wire_up(
        self,
        campaign: str,
        session: LocalizationSession,
    ) -> Tenant:
        if self.metrics is not None:
            session.enable_metrics(self.metrics.view({"tenant": campaign}))
        tenant = Tenant(
            campaign,
            session,
            self.policy,
            registry=self.metrics,
        )
        # Always capture verdict events: any connection may subscribe
        # later, and event emission never changes drained bytes (the
        # pinned with-subscribers invariant).
        session.subscribe(tenant._capture_event)
        # Touch the backend now, on the caller's (executor) thread:
        # world build / engine restore happen here, not under the first
        # ingest chunk's latency.
        session.backend
        return tenant

    def register(self, tenant: Tenant) -> Tenant:
        """Publish a built tenant (event-loop side).  If a concurrent
        attach won the race, the duplicate is discarded and the winner
        returned."""
        existing = self.tenants.get(tenant.campaign)
        if existing is not None:
            tenant.close()
            return existing
        self.tenants[tenant.campaign] = tenant
        if self._tenants_gauge is not None:
            self._tenants_gauge.set(len(self.tenants))
        _log.info(
            "serve.tenant.attach",
            extra=obslog.fields(
                tenant=tenant.campaign,
                preset=tenant.session.config.preset,
                backend=tenant.session.config.execution.backend,
            ),
        )
        return tenant

    def remove(self, campaign: str) -> None:
        tenant = self.tenants.pop(campaign, None)
        if tenant is not None:
            tenant.close()
            if self._tenants_gauge is not None:
                self._tenants_gauge.set(len(self.tenants))

    # -- durability --------------------------------------------------------

    def resume(self, path: Path) -> Tenant:
        """Rebuild one tenant from its state file (expensive; call off
        the event loop) — then :meth:`register` it."""
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
        serve = document.get("serve", {})
        if serve.get("format") != SERVE_STATE_FORMAT:
            raise ValueError(
                f"unsupported serve state format "
                f"{serve.get('format')!r} in {path}"
            )
        campaign = serve["campaign"]
        session = LocalizationSession.restore_document(document)
        tenant = self._wire_up(campaign, session)
        tenant.resume_token = serve["resume_token"]
        tenant.applied_seq = serve["applied_seq"]
        tenant.received_seq = serve["applied_seq"]
        tenant.checkpoint_seq = serve["applied_seq"]
        tenant.last_event_seq = serve.get("event_seq", 0)
        if self.metrics is not None:
            self.metrics.counter("repro_serve_resumes_total").inc()
        _log.info(
            "serve.tenant.resume",
            extra=obslog.fields(
                tenant=campaign,
                applied_seq=tenant.applied_seq,
                **state_summary(document["engine"]),
            ),
        )
        return tenant

    def state_files(self, state_dir: Path) -> List[Path]:
        directory = Path(state_dir)
        if not directory.is_dir():
            return []
        return sorted(directory.glob(f"*{STATE_SUFFIX}"))

    def close(self) -> None:
        for campaign in list(self.tenants):
            self.remove(campaign)


__all__ = [
    "SERVE_STATE_FORMAT",
    "STATE_SUFFIX",
    "AdmissionError",
    "AdmissionPolicy",
    "ServeError",
    "Tenant",
    "TenantRegistry",
    "state_path",
]
