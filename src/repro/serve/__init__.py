"""repro.serve — the always-on multi-tenant localization daemon.

One asyncio event loop accepts measurement streams from any number of
concurrent campaigns over the same length-prefixed wire protocol the
sharded backend speaks.  Each campaign is a *tenant*: its own
:class:`~repro.api.session.LocalizationSession` (inline or sharded),
its own bounded apply queue and single-thread executor, its own
verdict-event replay ring, and its own durable state file — so clients
can drop mid-stream, reconnect, and resume exactly, and a restarted
daemon picks every campaign back up where its last checkpoint left it.
Drains stay byte-identical to an uninterrupted inline run throughout.

- :class:`~repro.serve.server.ServeDaemon` / ``repro-serve`` — the
  daemon itself;
- :class:`~repro.serve.client.ServeClient` — the sequenced,
  reconnect-safe ingest stream (``repro-stream --connect`` is a thin
  shell over it);
- :class:`~repro.serve.client.ServeSubscriber` — cursor-tracked
  verdict-event subscriptions;
- :class:`~repro.serve.tenants.TenantRegistry` — admission control and
  per-tenant durability.
"""

from repro.serve.client import (
    ServeClient,
    ServeSubscriber,
    dial_daemon,
    stream_campaign,
)
from repro.serve.server import DaemonHandle, ServeDaemon, start_in_thread
from repro.serve.tenants import (
    AdmissionError,
    AdmissionPolicy,
    ServeError,
    Tenant,
    TenantRegistry,
)

__all__ = [
    "AdmissionError",
    "AdmissionPolicy",
    "DaemonHandle",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeSubscriber",
    "Tenant",
    "TenantRegistry",
    "dial_daemon",
    "start_in_thread",
    "stream_campaign",
]
