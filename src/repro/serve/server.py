"""The always-on localization daemon: one asyncio loop, many campaigns.

Where the sharded backend dedicates a blocking thread per worker
channel, :class:`ServeDaemon` multiplexes *every* client connection —
ingest streams, verdict subscribers, reconnecting stragglers — onto a
single event loop; hundreds of connections cost file descriptors, not
threads.  The CPU-bound work (engine ingestion, drains, checkpoint
serialization) runs on one single-thread executor per tenant, so the
loop never blocks and each tenant's session stays effectively
single-threaded.

The conversation per ingest connection::

    client                            daemon
    attach(campaign, config, token) ->
                                    <- attached(token, applied_seq)
    ingest(seq, [obs...])           ->
                                    <- [events([...])] ack(seq)
    ...                             <- checkpoint_ack(seq)   (periodic)
    drain(seq, discard)             ->
                                    <- result(PipelineResult)

Subscriber connections instead open with ``subscribe(campaign,
from_sequence)`` and receive ``events`` frames — first the buffered
replay past their cursor, then live pushes.

Backpressure is two bounded stages: a per-tenant ``asyncio.Queue``
(apply backlog) that suspends the connection's reader coroutine when
full — which stops consuming the socket, which is TCP backpressure all
the way to the client — and the client library's own outstanding-ack
window.  Acks mean "applied in memory"; the periodic
``checkpoint_ack`` is the only durable watermark, and the only thing
that lets a client forget its resend buffer.

SIGTERM/SIGINT drain every tenant's queue, checkpoint every tenant to
``--state-dir``, and exit; a restarted daemon resumes each tenant from
its state file, byte-identically (pinned in ``tests/test_serve.py``).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.api import wire
from repro.api.transport import FRAME_LENGTH, parse_address
from repro.obs import log as obslog
from repro.obs.export import MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.serve.tenants import (
    AdmissionPolicy,
    ServeError,
    Tenant,
    TenantRegistry,
)

_log = obslog.get_logger("serve.server")

# A frame above this is a protocol error, not a workload — refuse it
# before allocating (matches the transport's 4-byte length prefix cap
# in spirit; far below it in practice).
MAX_FRAME = 256 << 20


async def read_frame(reader: asyncio.StreamReader) -> Tuple:
    """One length-prefixed frame off an asyncio stream."""
    header = await reader.readexactly(FRAME_LENGTH.size)
    (length,) = FRAME_LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise wire.WireFormatError(f"frame of {length} bytes refused")
    return wire.decode(await reader.readexactly(length))


async def write_frame(
    writer: asyncio.StreamWriter, message: Tuple
) -> None:
    """Ship one frame; awaits the transport's own backpressure."""
    data = wire.encode(message)
    writer.write(FRAME_LENGTH.pack(len(data)) + data)
    await writer.drain()


class _Subscription:
    """One subscriber connection's cursor + wakeup."""

    def __init__(self, tenant: Tenant, cursor: int) -> None:
        self.tenant = tenant
        self.cursor = cursor
        self.wakeup = asyncio.Event()


class ServeDaemon:
    """The multi-tenant localization service.

    ``listen`` is the wire-protocol address; ``state_dir`` (optional
    but recommended) is where tenant checkpoints live; ``metrics_port``
    (None disables) serves ``/metrics`` + ``/healthz`` + ``/statusz``
    with per-tenant labels and rollups.  Use :func:`start_in_thread`
    from tests and :mod:`repro.serve.cli` from operations.
    """

    def __init__(
        self,
        listen: str = "127.0.0.1:0",
        state_dir: Optional[os.PathLike] = None,
        policy: Optional[AdmissionPolicy] = None,
        metrics_port: Optional[int] = None,
        pidfile: Optional[os.PathLike] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._listen = listen
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.tenants = TenantRegistry(self.policy, registry=self.registry)
        self._metrics_port = metrics_port
        self._pidfile = Path(pidfile) if pidfile is not None else None
        self.metrics_server: Optional[MetricsServer] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop = asyncio.Event()
        self._queues: Dict[str, asyncio.Queue] = {}
        self._appliers: Dict[str, asyncio.Task] = {}
        self._subscriptions: set = set()
        self._writers: set = set()
        self._conn_gauge = self.registry.gauge("repro_serve_connections")
        self._conn_total = self.registry.counter(
            "repro_serve_connections_total"
        )
        self._apply_seconds = self.registry.histogram(
            "repro_serve_apply_seconds"
        )
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind, resume tenants from the state dir, start serving."""
        loop = asyncio.get_running_loop()
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            for path in self.tenants.state_files(self.state_dir):
                tenant = await loop.run_in_executor(
                    None, self.tenants.resume, path
                )
                self.tenants.register(tenant)
                self._ensure_applier(tenant)
        host, port = parse_address(self._listen)
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        if self._metrics_port is not None:
            self.metrics_server = MetricsServer(
                self.registry, port=self._metrics_port
            )
        if self._pidfile is not None:
            self._pidfile.parent.mkdir(parents=True, exist_ok=True)
            self._pidfile.write_text(f"{os.getpid()}\n", encoding="utf-8")
        _log.info(
            "serve.start",
            extra=obslog.fields(
                address=self.address,
                tenants=len(self.tenants.tenants),
                state_dir=(
                    str(self.state_dir) if self.state_dir else None
                ),
            ),
        )

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger (idempotent)."""
        self._stop.set()

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop`; then checkpoint and exit."""
        await self._stop.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain apply queues, checkpoint every tenant."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Hang up on every client first: readers stop feeding the apply
        # queues, so the joins below are a backlog drain, not a wait on
        # clients that keep streaming.
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        # Let each applier finish its backlog, then stop it.
        for campaign, queue in list(self._queues.items()):
            await queue.join()
        for task in self._appliers.values():
            task.cancel()
        for task in list(self._appliers.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._appliers.clear()
        loop = asyncio.get_running_loop()
        if self.state_dir is not None:
            for tenant in list(self.tenants.tenants.values()):
                try:
                    await loop.run_in_executor(
                        tenant.executor, tenant.checkpoint, self.state_dir
                    )
                except Exception as exc:
                    _log.error(
                        "serve.checkpoint.failed",
                        extra=obslog.fields(
                            tenant=tenant.campaign, reason=str(exc)
                        ),
                    )
        self.tenants.close()
        if self.metrics_server is not None:
            self.metrics_server.close()
            self.metrics_server = None
        if self._pidfile is not None:
            try:
                self._pidfile.unlink()
            except FileNotFoundError:
                pass
        _log.info("serve.stop", extra=obslog.fields(address=self.address))

    # -- tenant plumbing ---------------------------------------------------

    def _ensure_applier(self, tenant: Tenant) -> asyncio.Queue:
        queue = self._queues.get(tenant.campaign)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.policy.queue_depth)
            self._queues[tenant.campaign] = queue
            self._appliers[tenant.campaign] = asyncio.ensure_future(
                self._apply_loop(tenant, queue)
            )
            loop = asyncio.get_running_loop()
            depth_gauge = self.registry.gauge(
                "repro_serve_queue_depth", {"tenant": tenant.campaign}
            )
            queue._depth_gauge = depth_gauge  # type: ignore[attr-defined]
            tenant.on_event = (
                lambda t, loop=loop: loop.call_soon_threadsafe(
                    self._wake_subscribers, t
                )
            )
        return queue

    def _wake_subscribers(self, tenant: Tenant) -> None:
        for subscription in self._subscriptions:
            if subscription.tenant is tenant:
                subscription.wakeup.set()

    async def _apply_loop(
        self, tenant: Tenant, queue: asyncio.Queue
    ) -> None:
        """One tenant's applier: queue → executor → reply, in order."""
        loop = asyncio.get_running_loop()
        clock = self.registry.clock
        while True:
            message, connection = await queue.get()
            try:
                queue._depth_gauge.set(queue.qsize())  # type: ignore
                started = clock()
                try:
                    kind, value = await loop.run_in_executor(
                        tenant.executor, tenant.apply, message
                    )
                except ServeError as exc:
                    await connection.send_error(str(exc))
                    continue
                except Exception as exc:   # engine/backend failure
                    await connection.send_error(
                        f"tenant {tenant.campaign} failed: {exc}"
                    )
                    continue
                finally:
                    self._apply_seconds.observe(clock() - started)
                await connection.push_events(tenant)
                if kind == "result":
                    await connection.send_frame(("result", value))
                    if self.state_dir is not None:
                        tenant.discard_state(self.state_dir)
                else:
                    await connection.send_frame((kind, value))
                if (
                    self.state_dir is not None
                    and tenant.due_for_checkpoint()
                ):
                    durable = await loop.run_in_executor(
                        tenant.executor, tenant.checkpoint, self.state_dir
                    )
                    await connection.send_frame(
                        wire.checkpoint_ack_frame(durable)
                    )
            except asyncio.CancelledError:
                # Only at shutdown, after queue.join() emptied us.
                raise
            except (ConnectionError, OSError):
                # The requesting client vanished mid-reply: the work IS
                # applied; the reconnecting client resyncs off the
                # applied_seq in its next attached reply.  The applier
                # must outlive any one connection.
                pass
            finally:
                queue.task_done()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_total.inc()
        self._conn_gauge.inc(1)
        self._writers.add(writer)
        connection = _Connection(writer)
        try:
            try:
                opening = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if opening and opening[0] == "subscribe":
                await self._serve_subscriber(reader, connection, opening)
            elif opening and opening[0] == "attach":
                await self._serve_ingest(reader, connection, opening)
            else:
                await connection.send_error(
                    f"expected attach or subscribe, got {opening[:1]!r}"
                )
        except wire.WireFormatError as exc:
            try:
                await connection.send_error(str(exc))
            except ConnectionError:
                pass
        except (asyncio.IncompleteReadError, ConnectionError):
            pass   # client dropped; tenant state is untouched by design
        finally:
            self._conn_gauge.inc(-1)
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_ingest(
        self,
        reader: asyncio.StreamReader,
        connection: "_Connection",
        opening: Tuple,
    ) -> None:
        campaign, config_payload, want_events, token, _options = (
            wire.check_attach(opening)
        )
        loop = asyncio.get_running_loop()
        try:
            tenant = self.tenants.admit(campaign, config_payload, token)
            if tenant is None:
                built = await loop.run_in_executor(
                    None, self.tenants.build, campaign, config_payload
                )
                tenant = self.tenants.register(built)
        except Exception as exc:
            # Admission refusals and config/world build failures alike:
            # the client gets one error frame, never a hang.
            await connection.send_error(str(exc))
            return
        queue = self._ensure_applier(tenant)
        connection.want_events = want_events
        connection.events_cursor = tenant.last_event_seq
        await connection.send_frame(
            wire.attached_frame(
                campaign, tenant.resume_token, tenant.applied_seq
            )
        )
        while True:
            message = await read_frame(reader)
            kind = message[0]
            if kind in ("ingest", "advance", "drain"):
                tenant.note_received(message[1])
                await queue.put((message, connection))
                queue._depth_gauge.set(queue.qsize())  # type: ignore
            elif kind == "detach":
                return
            else:
                await connection.send_error(
                    f"unexpected frame {kind!r} on an ingest connection"
                )
                return

    async def _serve_subscriber(
        self,
        reader: asyncio.StreamReader,
        connection: "_Connection",
        opening: Tuple,
    ) -> None:
        campaign, from_sequence = wire.check_subscribe(opening)
        tenant = self.tenants.tenants.get(campaign)
        if tenant is None:
            await connection.send_error(
                f"campaign {campaign!r} is not attached"
            )
            return
        subscription = _Subscription(tenant, from_sequence)
        self._subscriptions.add(subscription)
        closed = asyncio.ensure_future(self._watch_close(reader))
        try:
            await connection.send_frame(
                wire.subscribed_frame(campaign, tenant.last_event_seq)
            )
            while True:
                batch = tenant.events_after(subscription.cursor)
                if batch:
                    last = batch[-1][wire.EVENT_SEQUENCE_INDEX]
                    await connection.send_frame(("events", batch))
                    subscription.cursor = last
                subscription.wakeup.clear()
                if closed.done():
                    return
                waiter = asyncio.ensure_future(subscription.wakeup.wait())
                await asyncio.wait(
                    (waiter, closed),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                waiter.cancel()
                if closed.done() and not subscription.wakeup.is_set():
                    return
        finally:
            self._subscriptions.discard(subscription)
            closed.cancel()

    @staticmethod
    async def _watch_close(reader: asyncio.StreamReader) -> None:
        """Resolve when the subscriber hangs up (it never speaks again)."""
        try:
            await reader.read()
        except (ConnectionError, OSError):
            pass


class _Connection:
    """Write-side of one client connection, serialized by a lock.

    The applier task and the reader coroutine both write (replies vs.
    error frames); one lock keeps frames whole.  Event pushes ride the
    ingest connection only when the client attached with
    ``want_events`` — each connection tracks its own event cursor.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._lock = asyncio.Lock()
        self.want_events = False
        self.events_cursor = 0

    async def send_frame(self, message: Tuple) -> None:
        async with self._lock:
            await write_frame(self._writer, message)

    async def send_error(self, message: str) -> None:
        await self.send_frame(("error", message))

    async def push_events(self, tenant: Tenant) -> None:
        if not self.want_events:
            return
        batch = tenant.events_after(self.events_cursor)
        if not batch:
            return
        self.events_cursor = batch[-1][wire.EVENT_SEQUENCE_INDEX]
        await self.send_frame(("events", batch))


class DaemonHandle:
    """A daemon running on a background thread (tests, notebooks)."""

    def __init__(self, daemon: ServeDaemon) -> None:
        self.daemon = daemon
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=60.0)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def _main() -> None:
            await self.daemon.start()
            self._started.set()
            await self.daemon.serve_forever()

        try:
            self._loop.run_until_complete(_main())
        finally:
            self._loop.close()

    @property
    def address(self) -> str:
        return self.daemon.address

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.daemon.request_stop)
            self._thread.join(timeout=timeout)


def start_in_thread(**kwargs: Any) -> DaemonHandle:
    """Run a :class:`ServeDaemon` on a background thread; returns once
    it is accepting connections."""
    return DaemonHandle(ServeDaemon(**kwargs))


def read_pidfile(path: os.PathLike) -> Optional[int]:
    """The daemon pid recorded at ``path``, or None."""
    try:
        return int(Path(path).read_text(encoding="utf-8").strip())
    except (FileNotFoundError, ValueError):
        return None


def healthz_snapshot(address: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch and decode a daemon's ``/healthz`` (operator helper)."""
    from urllib.request import urlopen
    from urllib.error import HTTPError

    try:
        with urlopen(f"http://{address}/healthz", timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except HTTPError as exc:   # 503 still carries the health body
        return json.loads(exc.read().decode("utf-8"))


__all__ = [
    "MAX_FRAME",
    "DaemonHandle",
    "ServeDaemon",
    "healthz_snapshot",
    "read_frame",
    "read_pidfile",
    "start_in_thread",
    "write_frame",
]
