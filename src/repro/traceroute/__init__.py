"""Traceroute simulation.

Substitute for the scapy-driven traceroutes ICLab records alongside every
test.  The simulator produces IP hop lists over the router-level path with
the real tool's failure modes: non-responsive hops (``*``), truncated runs,
and outright errors — the raw material for the paper's four
inconclusive-path discard rules (§3.1).
"""

from repro.traceroute.simulate import (
    Traceroute,
    TracerouteHop,
    TracerouteParams,
    simulate_traceroute,
    simulate_traceroute_triplet,
)

__all__ = [
    "Traceroute",
    "TracerouteHop",
    "TracerouteParams",
    "simulate_traceroute",
    "simulate_traceroute_triplet",
]
