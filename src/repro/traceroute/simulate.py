"""TTL-limited probing over a router-level path.

A traceroute walks the :class:`~repro.netsim.path.RouterPath` hop by hop.
Every hop independently fails to answer with ``hop_nonresponse_probability``
(rate-limited ICMP, MPLS tunnels); a whole run errors out with
``error_probability`` (probe filtered, raw-socket failure); and a run may be
truncated when consecutive hops go quiet near the destination (max-TTL
exhaustion).  RTTs grow with hop distance plus exponential jitter, purely
for realism of the records.

ICLab launches three traceroutes per test; :func:`simulate_traceroute_triplet`
reproduces that, optionally letting one of the three observe the *previous*
path when the test races a route change — the main natural source of the
paper's discard rule (4), "more than one AS-level path".
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.netsim.path import RouterPath
from repro.util.rng import DeterministicRNG


@dataclass(frozen=True)
class TracerouteParams:
    """Failure and timing characteristics of the prober."""

    hop_nonresponse_probability: float = 0.03
    error_probability: float = 0.01
    truncation_probability: float = 0.005  # run dies mid-path
    per_hop_rtt: float = 0.004
    racing_path_probability: float = 0.35  # one run sees the old path when
    #                                        the pair churned very recently


class TracerouteHop(NamedTuple):
    """One line of traceroute output: an address or a ``*``.

    A NamedTuple rather than a dataclass: tens of thousands are built per
    campaign and tuple construction is the cheapest immutable record.
    """

    index: int
    address: Optional[int]  # None == non-responsive ("*")
    rtt: Optional[float]

    @property
    def responded(self) -> bool:
        """Whether the hop answered."""
        return self.address is not None


@dataclass(frozen=True)
class Traceroute:
    """One traceroute run."""

    hops: Tuple[TracerouteHop, ...]
    destination_reached: bool
    error: bool = False

    @property
    def responsive_addresses(self) -> List[int]:
        """Addresses of hops that answered, in order."""
        return [hop.address for hop in self.hops if hop.address is not None]

    def __len__(self) -> int:
        return len(self.hops)


def simulate_traceroute(
    router_path: RouterPath,
    rng: DeterministicRNG,
    params: TracerouteParams = TracerouteParams(),
    plan_cache: Optional[dict] = None,
) -> Traceroute:
    """Run one simulated traceroute over ``router_path``.

    The per-hop loop draws the same RNG stream as the naive formulation
    (one uniform per decision, one exponential per responsive hop) with
    the method lookups hoisted — this function runs three times for every
    test of a campaign.  ``plan_cache`` (a plain dict owned by the
    caller, e.g. the measurement platform) memoizes the per-path probe
    plan; without one the plan is rebuilt per run.
    """
    if rng.chance(params.error_probability):
        return Traceroute(hops=(), destination_reached=False, error=True)
    uniform = rng.random
    truncation_probability = params.truncation_probability
    nonresponse_probability = params.hop_nonresponse_probability
    if not (0.0 < truncation_probability < 1.0) or not (
        0.0 < nonresponse_probability < 1.0
    ):
        # Degenerate probabilities change the draw count (chance() skips
        # the draw); take the general path to keep the stream identical.
        return _simulate_traceroute_general(router_path, rng, params)
    return _run_traceroute_plan(
        _trace_plan(router_path, params, plan_cache), rng, params
    )


def _trace_plan(
    router_path: RouterPath,
    params: TracerouteParams,
    cache: Optional[dict],
) -> List[Tuple[int, Optional[int], float]]:
    """(hop_index, address, base_rtt) triples for the probe loop.

    Plans let the three runs per test unpack C-level tuples instead of
    re-reading dataclass attributes per hop.  The cache is keyed by
    identity — router paths are interned for the owning platform's
    lifetime — with the objects themselves kept in the value to make an
    id-collision after garbage collection impossible to mistake for a
    hit.
    """
    if cache is None:
        rtt_step = 2 * params.per_hop_rtt
        return [
            (hop.hop_index, hop.address, (hop.hop_index + 1) * rtt_step)
            for hop in router_path.hops
        ]
    key = (id(router_path), id(params))
    plan = cache.get(key)
    if plan is None or plan[0] is not router_path or plan[1] is not params:
        rtt_step = 2 * params.per_hop_rtt
        plan = cache[key] = (
            router_path,
            params,
            [
                (hop.hop_index, hop.address, (hop.hop_index + 1) * rtt_step)
                for hop in router_path.hops
            ],
        )
    return plan[2]


def _run_traceroute_plan(
    plan: List[Tuple[int, Optional[int], float]],
    rng: DeterministicRNG,
    params: TracerouteParams,
) -> Traceroute:
    uniform = rng.random
    truncation_probability = params.truncation_probability
    nonresponse_probability = params.hop_nonresponse_probability
    # expovariate(lambd) is -log(1 - random())/lambd; inlined with the
    # identical operation order so the value stream is bit-equal.
    jitter_rate = 2.0 / params.per_hop_rtt if params.per_hop_rtt > 0 else None
    hops: List[TracerouteHop] = []
    append = hops.append
    # Direct tuple construction: the generated NamedTuple __new__ is a
    # Python-level lambda, measurable at this call volume.
    new_hop = tuple.__new__
    truncated = False
    for hop_index, address, base_rtt in plan:
        if uniform() < truncation_probability:
            truncated = True
            break
        if uniform() < nonresponse_probability:
            append(new_hop(TracerouteHop, (hop_index, None, None)))
            continue
        if jitter_rate is not None:
            rtt = base_rtt + -log(1.0 - uniform()) / jitter_rate
        else:
            rtt = base_rtt
        append(new_hop(TracerouteHop, (hop_index, address, rtt)))
    reached = not truncated and bool(hops) and hops[-1].responded
    return Traceroute(hops=tuple(hops), destination_reached=reached)


def _simulate_traceroute_general(
    router_path: RouterPath,
    rng: DeterministicRNG,
    params: TracerouteParams,
) -> Traceroute:
    """The unspecialized per-hop loop (handles 0/1 probabilities)."""
    hops: List[TracerouteHop] = []
    truncated = False
    for hop in router_path.hops:
        if rng.chance(params.truncation_probability):
            truncated = True
            break
        if rng.chance(params.hop_nonresponse_probability):
            hops.append(TracerouteHop(index=hop.hop_index, address=None, rtt=None))
            continue
        rtt = (hop.hop_index + 1) * 2 * params.per_hop_rtt
        rtt += rng.exponential_jitter(params.per_hop_rtt / 2)
        hops.append(
            TracerouteHop(index=hop.hop_index, address=hop.address, rtt=rtt)
        )
    reached = not truncated and bool(hops) and hops[-1].responded
    return Traceroute(hops=tuple(hops), destination_reached=reached)


def simulate_traceroute_triplet(
    router_path: RouterPath,
    rng: DeterministicRNG,
    params: TracerouteParams = TracerouteParams(),
    racing_router_path: Optional[RouterPath] = None,
    plan_cache: Optional[dict] = None,
) -> List[Traceroute]:
    """The three traceroutes ICLab records per test.

    When ``racing_router_path`` is given (the pair's previous route, because
    a route change landed very close to the test), one of the three runs
    may observe it instead of the current path.
    """
    runs: List[Traceroute] = []
    race_index = -1
    if racing_router_path is not None and rng.chance(params.racing_path_probability):
        race_index = rng.randrange(3)
    for index in range(3):
        path = racing_router_path if index == race_index else router_path
        assert path is not None
        runs.append(
            simulate_traceroute(path, rng, params, plan_cache=plan_cache)
        )
    return runs


__all__ = [
    "TracerouteParams",
    "TracerouteHop",
    "Traceroute",
    "simulate_traceroute",
    "simulate_traceroute_triplet",
]
