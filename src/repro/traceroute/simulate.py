"""TTL-limited probing over a router-level path.

A traceroute walks the :class:`~repro.netsim.path.RouterPath` hop by hop.
Every hop independently fails to answer with ``hop_nonresponse_probability``
(rate-limited ICMP, MPLS tunnels); a whole run errors out with
``error_probability`` (probe filtered, raw-socket failure); and a run may be
truncated when consecutive hops go quiet near the destination (max-TTL
exhaustion).  RTTs grow with hop distance plus exponential jitter, purely
for realism of the records.

ICLab launches three traceroutes per test; :func:`simulate_traceroute_triplet`
reproduces that, optionally letting one of the three observe the *previous*
path when the test races a route change — the main natural source of the
paper's discard rule (4), "more than one AS-level path".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.netsim.path import RouterPath
from repro.util.rng import DeterministicRNG


@dataclass(frozen=True)
class TracerouteParams:
    """Failure and timing characteristics of the prober."""

    hop_nonresponse_probability: float = 0.03
    error_probability: float = 0.01
    truncation_probability: float = 0.005  # run dies mid-path
    per_hop_rtt: float = 0.004
    racing_path_probability: float = 0.35  # one run sees the old path when
    #                                        the pair churned very recently


@dataclass(frozen=True)
class TracerouteHop:
    """One line of traceroute output: an address or a ``*``."""

    index: int
    address: Optional[int]  # None == non-responsive ("*")
    rtt: Optional[float]

    @property
    def responded(self) -> bool:
        """Whether the hop answered."""
        return self.address is not None


@dataclass(frozen=True)
class Traceroute:
    """One traceroute run."""

    hops: Tuple[TracerouteHop, ...]
    destination_reached: bool
    error: bool = False

    @property
    def responsive_addresses(self) -> List[int]:
        """Addresses of hops that answered, in order."""
        return [hop.address for hop in self.hops if hop.address is not None]

    def __len__(self) -> int:
        return len(self.hops)


def simulate_traceroute(
    router_path: RouterPath,
    rng: DeterministicRNG,
    params: TracerouteParams = TracerouteParams(),
) -> Traceroute:
    """Run one simulated traceroute over ``router_path``."""
    if rng.chance(params.error_probability):
        return Traceroute(hops=(), destination_reached=False, error=True)
    hops: List[TracerouteHop] = []
    truncated = False
    for hop in router_path.hops:
        if rng.chance(params.truncation_probability):
            truncated = True
            break
        if rng.chance(params.hop_nonresponse_probability):
            hops.append(TracerouteHop(index=hop.hop_index, address=None, rtt=None))
            continue
        rtt = (hop.hop_index + 1) * 2 * params.per_hop_rtt
        rtt += rng.exponential_jitter(params.per_hop_rtt / 2)
        hops.append(
            TracerouteHop(index=hop.hop_index, address=hop.address, rtt=rtt)
        )
    reached = not truncated and bool(hops) and hops[-1].responded
    return Traceroute(hops=tuple(hops), destination_reached=reached)


def simulate_traceroute_triplet(
    router_path: RouterPath,
    rng: DeterministicRNG,
    params: TracerouteParams = TracerouteParams(),
    racing_router_path: Optional[RouterPath] = None,
) -> List[Traceroute]:
    """The three traceroutes ICLab records per test.

    When ``racing_router_path`` is given (the pair's previous route, because
    a route change landed very close to the test), one of the three runs
    may observe it instead of the current path.
    """
    runs: List[Traceroute] = []
    race_index = -1
    if racing_router_path is not None and rng.chance(params.racing_path_probability):
        race_index = rng.randrange(3)
    for index in range(3):
        path = racing_router_path if index == race_index else router_path
        assert path is not None
        runs.append(simulate_traceroute(path, rng, params))
    return runs


__all__ = [
    "TracerouteParams",
    "TracerouteHop",
    "Traceroute",
    "simulate_traceroute",
    "simulate_traceroute_triplet",
]
