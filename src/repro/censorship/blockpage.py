"""Blockpage HTML templates and fingerprints.

The ICLab platform detects blockpages two ways (paper §2.1): regular-
expression matching against a corpus of known blockpages (OONI's corpus in
the paper) and comparison against censor-free baseline fetches (Jones et
al.).  These templates are the synthetic corpus: each carries a distinctive
marker string the regex detector keys on, and their lengths differ sharply
from ordinary pages so the length-comparison detector fires too.
"""

from __future__ import annotations

from typing import Dict, Tuple

# Marker -> template. Markers are what the detector's regex corpus matches.
BLOCKPAGE_TEMPLATES: Dict[str, str] = {
    "gov-filter": (
        "<html><head><title>Access Denied</title></head><body>"
        "<h1>Access to this website has been blocked</h1>"
        "<p>Pursuant to national regulation, access to {domain} is denied."
        " Reference: GOV-FILTER-{asn}.</p></body></html>"
    ),
    "netguard": (
        "<html><head><title>NetGuard Web Filter</title></head><body>"
        "<div class='netguard-banner'>NetGuard: the requested page"
        " ({domain}) falls under a restricted category.</div>"
        "<small>appliance id asn-{asn}</small></body></html>"
    ),
    "isp-notice": (
        "<html><head><title>Site Unavailable</title></head><body>"
        "<p>Your internet provider has restricted access to {domain}"
        " in accordance with applicable law. ISP-NOTICE asn {asn}.</p>"
        "</body></html>"
    ),
    "court-order": (
        "<html><head><title>Blocked by court order</title></head><body>"
        "<h2>This domain ({domain}) is blocked by court order"
        " COURT-ORDER/{asn}.</h2></body></html>"
    ),
}

# Regexes (as plain substrings here) the detector corpus looks for; kept in
# sync with the templates above.  Real corpora carry patterns like these.
BLOCKPAGE_FINGERPRINTS: Tuple[str, ...] = (
    "GOV-FILTER-",
    "NetGuard: the requested page",
    "ISP-NOTICE asn",
    "COURT-ORDER/",
    "has been blocked",
)


def render_blockpage(template_key: str, domain: str, asn: int) -> str:
    """Instantiate a blockpage template for a domain and censor ASN.

    >>> "GOV-FILTER-64500" in render_blockpage("gov-filter", "x.com", 64500)
    True
    """
    try:
        template = BLOCKPAGE_TEMPLATES[template_key]
    except KeyError:
        raise KeyError(f"unknown blockpage template: {template_key!r}") from None
    return template.format(domain=domain, asn=asn)


def looks_like_blockpage(body: str) -> bool:
    """Whether ``body`` matches the synthetic fingerprint corpus."""
    return any(fingerprint in body for fingerprint in BLOCKPAGE_FINGERPRINTS)


__all__ = [
    "BLOCKPAGE_TEMPLATES",
    "BLOCKPAGE_FINGERPRINTS",
    "render_blockpage",
    "looks_like_blockpage",
]
