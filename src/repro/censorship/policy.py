"""Censorship policies: what a censor blocks, and how that changes over time.

A policy is a sequence of :class:`PolicyEpoch` objects partitioning the
simulation horizon; each epoch carries the set of blocked categories.
Policy changes inside a tomography time window make the window's CNF
unsatisfiable (the same path yields both True and False clauses), which is
one of the two no-solution causes the paper names — so epochs are a first-
class modelling concept here, not an afterthought.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence

from repro.urls.categories import Category
from repro.util.rng import DeterministicRNG
from repro.util.timeutil import DAY


@dataclass(frozen=True)
class PolicyEpoch:
    """Blocked categories over the half-open interval [start, end)."""

    start: int
    end: int
    blocked: FrozenSet[Category]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("empty policy epoch")


class CensorshipPolicy:
    """A censor's time-varying category blocklist."""

    def __init__(self, epochs: Sequence[PolicyEpoch]) -> None:
        if not epochs:
            raise ValueError("policy needs at least one epoch")
        ordered = sorted(epochs, key=lambda e: e.start)
        for previous, current in zip(ordered, ordered[1:]):
            if current.start != previous.end:
                raise ValueError("policy epochs must tile the horizon")
        self._epochs = list(ordered)
        self._starts = [epoch.start for epoch in self._epochs]

    @classmethod
    def constant(
        cls, blocked: Sequence[Category], start: int, end: int
    ) -> "CensorshipPolicy":
        """A policy that never changes."""
        return cls([PolicyEpoch(start, end, frozenset(blocked))])

    def epoch_at(self, timestamp: int) -> PolicyEpoch:
        """The epoch containing ``timestamp`` (clamped to the horizon)."""
        index = bisect.bisect_right(self._starts, timestamp) - 1
        index = max(0, min(index, len(self._epochs) - 1))
        return self._epochs[index]

    def blocks(self, category: Optional[Category], timestamp: int) -> bool:
        """Whether ``category`` is blocked at ``timestamp``."""
        if category is None:
            return False
        return category in self.epoch_at(timestamp).blocked

    @property
    def epochs(self) -> List[PolicyEpoch]:
        """All epochs in time order."""
        return list(self._epochs)

    @property
    def ever_blocked(self) -> FrozenSet[Category]:
        """Categories blocked during at least one epoch."""
        out: set = set()
        for epoch in self._epochs:
            out |= epoch.blocked
        return frozenset(out)

    @property
    def changes(self) -> int:
        """Number of times the blocklist actually changed."""
        return sum(
            1
            for previous, current in zip(self._epochs, self._epochs[1:])
            if previous.blocked != current.blocked
        )


def random_policy(
    base_categories: Sequence[Category],
    start: int,
    end: int,
    rng: DeterministicRNG,
    change_rate_per_year: float = 2.0,
    all_categories: Sequence[Category] = Category.all(),
) -> CensorshipPolicy:
    """A policy starting from ``base_categories`` with occasional changes.

    Change points follow exponential gaps with the given yearly rate; at
    each change one category is toggled (added if absent, dropped if
    present) — the "Iran increases censorship around elections" pattern.
    """
    if end <= start:
        raise ValueError("empty policy horizon")
    blocked = set(base_categories)
    epochs: List[PolicyEpoch] = []
    cursor = start
    year = 365 * DAY
    if change_rate_per_year <= 0:
        return CensorshipPolicy.constant(list(blocked), start, end)
    mean_gap = year / change_rate_per_year
    change_at = cursor + rng.expovariate(1.0 / mean_gap)
    while change_at < end:
        point = int(change_at)
        if point > cursor:
            epochs.append(PolicyEpoch(cursor, point, frozenset(blocked)))
            cursor = point
        toggle = rng.pick(list(all_categories))
        if toggle in blocked and len(blocked) > 1:
            blocked.discard(toggle)
        else:
            blocked.add(toggle)
        change_at += rng.expovariate(1.0 / mean_gap)
    epochs.append(PolicyEpoch(cursor, end, frozenset(blocked)))
    return CensorshipPolicy(epochs)


__all__ = ["PolicyEpoch", "CensorshipPolicy", "random_policy"]
