"""Placing censors in a topology, with queryable ground truth.

The deployment decides *which* ASes censor, *what* they censor, and *how* —
the hidden state the tomography pipeline must recover.  Benchmarks and
tests validate inferred censors against the
:class:`CensorDeployment` returned here.

Placement follows the paper's empirical picture:

- censoring countries host between one and a handful of censoring ASes
  (Table 2 tops out at six per country);
- censors sit mostly in transit ASes (national backbones running DPI) with
  some access-network censors; transit placement is what makes leakage
  possible at all;
- a subset of countries ("all-technique" profiles, the China/Cyprus analogs
  of Table 2) deploy every technique and broad category policies, while
  others are narrow (the paper's ad-vendor-only censors in Ireland/Spain/UK).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.anomaly import Anomaly
from repro.censorship.blockpage import BLOCKPAGE_TEMPLATES
from repro.censorship.censor import CensorMiddlebox, Technique
from repro.censorship.policy import CensorshipPolicy, random_policy
from repro.topology.asn import ASType
from repro.topology.graph import ASGraph
from repro.urls.categories import Category, CategoryDatabase
from repro.util.rng import DeterministicRNG

_TCP_TECHNIQUES = (
    Technique.RST_INJECT,
    Technique.SEQ_TAMPER,
    Technique.BLOCKPAGE_INJECT,
    Technique.BLOCKPAGE_PROXY,
)
ALL_TECHNIQUES = (Technique.DNS_INJECT,) + _TCP_TECHNIQUES


@dataclass(frozen=True)
class CountryCensorshipProfile:
    """How a censoring country behaves."""

    country_code: str
    num_censors: int = 2
    techniques: Tuple[Technique, ...] = ALL_TECHNIQUES
    max_techniques_per_censor: int = 2
    blocked_categories: Tuple[Category, ...] = (
        Category.SHOPPING,
        Category.CLASSIFIEDS,
    )
    scoped_fraction: float = 0.5
    policy_change_rate_per_year: float = 2.0
    domain_coverage: float = 0.6  # fraction of a blocked category's domains
    all_technique_censors: bool = False  # China/Cyprus analogs

    def __post_init__(self) -> None:
        if self.num_censors < 1:
            raise ValueError("num_censors must be >= 1")
        if not self.techniques:
            raise ValueError("profile needs at least one technique")
        if not self.blocked_categories:
            raise ValueError("profile needs at least one blocked category")


@dataclass(frozen=True)
class DeploymentConfig:
    """Which countries censor, and the simulation horizon."""

    profiles: Tuple[CountryCensorshipProfile, ...]
    start: int
    end: int
    seed: int = 0
    fire_probability: float = 0.995

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("empty deployment horizon")
        codes = [p.country_code for p in self.profiles]
        if len(codes) != len(set(codes)):
            raise ValueError("duplicate country profiles")


@dataclass
class CensorDeployment:
    """The ground truth: every censor middlebox, indexed by ASN."""

    censors_by_asn: Dict[int, CensorMiddlebox] = field(default_factory=dict)

    def is_censor(self, asn: int) -> bool:
        """Whether ``asn`` hosts a censor."""
        return asn in self.censors_by_asn

    def censor_of(self, asn: int) -> Optional[CensorMiddlebox]:
        """The censor at ``asn``, or None."""
        return self.censors_by_asn.get(asn)

    @property
    def censor_asns(self) -> List[int]:
        """All censoring ASNs."""
        return list(self.censors_by_asn)

    @property
    def censoring_countries(self) -> FrozenSet[str]:
        """Country codes hosting at least one censor."""
        return frozenset(c.country_code for c in self.censors_by_asn.values())

    def unscoped_censors(self) -> List[CensorMiddlebox]:
        """Censors acting on transit traffic (the potential leakers)."""
        return [c for c in self.censors_by_asn.values() if not c.scoped]

    def can_cause(self, asn: int, anomaly: Anomaly, domain: str) -> bool:
        """Ground-truth check: could censor ``asn`` cause ``anomaly`` on
        ``domain``?  Used to validate inferred (AS, anomaly) attributions."""
        censor = self.censors_by_asn.get(asn)
        if censor is None:
            return False
        if not censor.covers_domain(domain):
            return False
        return anomaly in censor.expected_anomalies(domain)

    def middleboxes_for_path(
        self, as_path: Sequence[int]
    ) -> List[Tuple[CensorMiddlebox, int]]:
        """Censors sitting on an AS path, paired with *AS-level* position.

        The session simulator needs router-hop positions; callers translate
        AS positions via the router path.  Exposed for tests and for the
        platform's fast path.
        """
        out: List[Tuple[CensorMiddlebox, int]] = []
        for position, asn in enumerate(as_path):
            censor = self.censors_by_asn.get(asn)
            if censor is not None:
                out.append((censor, position))
        return out


def default_profiles(
    censoring_countries: Sequence[str],
    all_technique_countries: Sequence[str] = (),
    seed: int = 0,
) -> Tuple[CountryCensorshipProfile, ...]:
    """Build per-country profiles with paper-like diversity.

    Countries in ``all_technique_countries`` get every technique, broad
    categories, and more censoring ASes; remaining countries get one to
    three techniques and one to three categories.
    """
    rng = DeterministicRNG(seed, "profiles")
    profiles: List[CountryCensorshipProfile] = []
    for code in censoring_countries:
        if code in all_technique_countries:
            extras = rng.sample_at_most(Category.all(), rng.randint(3, 5))
            blocked = tuple(
                dict.fromkeys(
                    (Category.SHOPPING, Category.CLASSIFIEDS) + tuple(extras)
                )
            )
            profiles.append(
                CountryCensorshipProfile(
                    country_code=code,
                    num_censors=rng.randint(3, 6),
                    techniques=ALL_TECHNIQUES,
                    max_techniques_per_censor=len(ALL_TECHNIQUES),
                    blocked_categories=blocked,
                    scoped_fraction=0.35,
                    all_technique_censors=True,
                )
            )
        else:
            techniques = tuple(
                rng.sample_at_most(list(ALL_TECHNIQUES), rng.randint(1, 3))
            )
            blocked = tuple(
                dict.fromkeys(
                    _weighted_categories(rng, rng.randint(1, 2))
                )
            )
            profiles.append(
                CountryCensorshipProfile(
                    country_code=code,
                    num_censors=rng.randint(1, 3),
                    techniques=techniques,
                    max_techniques_per_censor=2,
                    blocked_categories=blocked,
                    scoped_fraction=0.55,
                )
            )
    return tuple(profiles)


def _weighted_categories(rng: DeterministicRNG, count: int) -> List[Category]:
    """Draw categories skewed like observed censorship (paper §4).

    Online Shopping and Classifieds are the most commonly censored
    categories in the paper, and they are also the heaviest in the test
    list, so weighting them keeps test-list/censor overlap realistic even
    in very small scenarios.
    """
    pool = list(Category.all())
    weights = [1.0] * len(pool)
    weights[pool.index(Category.SHOPPING)] = 4.0
    weights[pool.index(Category.CLASSIFIEDS)] = 3.5
    weights[pool.index(Category.NEWS)] = 2.0
    weights[pool.index(Category.AD_VENDOR)] = 1.5
    return [rng.pick_weighted(pool, weights) for _ in range(count)]


def deploy_censors(
    graph: ASGraph,
    categories: CategoryDatabase,
    config: DeploymentConfig,
) -> CensorDeployment:
    """Instantiate censors per the configuration.

    Censoring ASes are drawn from each country's transit ASes first (two
    thirds of picks) and access ASes second, without replacement; countries
    with fewer eligible ASes than ``num_censors`` get as many as exist.

    Scoping is structural: only *access-network* censors can be scoped
    (client ACLs at the subscriber edge), while transit censors always act
    on everything crossing them (DPI on the forwarding path, GFW-style).
    A scoped transit censor would be self-contradictory for AS-level
    tomography — foreign transit traffic would exonerate an AS that still
    censors domestic clients — and real national-backbone filtering is not
    client-scoped either.
    """
    rng = DeterministicRNG(config.seed, "deployment")
    country_by_asn = {a.asn: a.country.code for a in graph.registry}
    deployment = CensorDeployment()
    template_keys = list(BLOCKPAGE_TEMPLATES)
    for profile in config.profiles:
        # National transit only: global tier-1 backbones do not run
        # country blocklists (and a censoring tier-1 would censor the
        # whole planet's transit, which nothing in the paper's data shows).
        transit = [
            a.asn
            for a in graph.registry.in_country(profile.country_code)
            if a.as_type is ASType.TRANSIT
        ]
        access = [
            a.asn
            for a in graph.registry.in_country(profile.country_code)
            if a.as_type is ASType.ACCESS
        ]
        pool = rng.sample_at_most(transit, max(1, 2 * profile.num_censors // 3))
        pool += rng.sample_at_most(
            access, profile.num_censors - len(pool)
        )
        if len(pool) < profile.num_censors:
            extra = [
                asn
                for asn in transit + access
                if asn not in pool
            ]
            pool += rng.sample_at_most(extra, profile.num_censors - len(pool))
        access_set = set(access)
        for asn in pool[: profile.num_censors]:
            if profile.all_technique_censors:
                techniques: Sequence[Technique] = profile.techniques
            else:
                count = rng.randint(
                    1, min(profile.max_techniques_per_censor, len(profile.techniques))
                )
                techniques = rng.sample_at_most(list(profile.techniques), count)
            policy = random_policy(
                base_categories=profile.blocked_categories,
                start=config.start,
                end=config.end,
                rng=rng.fork("policy", asn),
                change_rate_per_year=profile.policy_change_rate_per_year,
            )
            deployment.censors_by_asn[asn] = CensorMiddlebox(
                asn=asn,
                country_code=profile.country_code,
                policy=policy,
                techniques=techniques,
                scoped=asn in access_set and rng.chance(profile.scoped_fraction),
                categories=categories,
                country_by_asn=country_by_asn,
                seed=config.seed,
                fire_probability=config.fire_probability,
                domain_coverage=profile.domain_coverage,
                blockpage_template=rng.pick(template_keys),
            )
    return deployment


__all__ = [
    "CountryCensorshipProfile",
    "DeploymentConfig",
    "CensorDeployment",
    "default_profiles",
    "deploy_censors",
    "ALL_TECHNIQUES",
]
