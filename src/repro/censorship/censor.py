"""The censor middlebox: techniques and their packet-level signatures.

Every censor is an on-path middlebox with a category policy and one or more
*techniques*.  Technique assignment is deterministic per (censor, domain):
a censor always treats a given domain the same way, like real deployments
driven by per-URL filter rules.  The same determinism governs whether the
censor mimics server TTLs and whether it tears down the server side, so a
censor's observable behaviour for a domain is stable — inconsistency enters
only through the (rare) per-session failure to fire, which is exactly the
measurement noise the paper blames for unsolvable CNFs.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional, Sequence

from repro.anomaly import Anomaly
from repro.censorship.blockpage import render_blockpage
from repro.censorship.policy import CensorshipPolicy
from repro.netsim.middlebox import (
    DnsInjectAction,
    DnsInjection,
    Middlebox,
    SeqTamperMode,
    SessionContext,
    TcpAction,
    TcpActionKind,
)
from repro.urls.categories import CategoryDatabase
from repro.util.rng import DeterministicRNG, derive_seed


class Technique(enum.Enum):
    """Censorship techniques and the anomalies they can produce."""

    DNS_INJECT = "dns-inject"
    RST_INJECT = "rst-inject"
    SEQ_TAMPER = "seq-tamper"
    BLOCKPAGE_INJECT = "blockpage-inject"
    BLOCKPAGE_PROXY = "blockpage-proxy"
    THROTTLE = "throttle"

    def anomalies(self, mimics_ttl: bool = False) -> FrozenSet[Anomaly]:
        """Anomaly types this technique can trigger at the client.

        ``mimics_ttl`` removes the TTL signature (crafted TTLs defeat the
        TTL detector).  Throttling is invisible to ICLab's five detectors —
        the paper lists throttling detection as future work.
        """
        base: FrozenSet[Anomaly]
        if self is Technique.DNS_INJECT:
            base = frozenset({Anomaly.DNS})
        elif self is Technique.RST_INJECT:
            base = frozenset({Anomaly.RST, Anomaly.TTL})
        elif self is Technique.SEQ_TAMPER:
            base = frozenset({Anomaly.SEQ, Anomaly.TTL})
        elif self is Technique.BLOCKPAGE_INJECT:
            base = frozenset({Anomaly.BLOCK, Anomaly.TTL, Anomaly.RST, Anomaly.SEQ})
        elif self is Technique.BLOCKPAGE_PROXY:
            base = frozenset({Anomaly.BLOCK})
        else:
            base = frozenset()
        if mimics_ttl:
            base = base - {Anomaly.TTL}
        return base

    @property
    def is_tcp(self) -> bool:
        """Whether the technique acts on TCP/HTTP sessions."""
        return self not in (Technique.DNS_INJECT,)


_SINKHOLE_ADDRESS = 0x0A000001  # 10.0.0.1 — classic injected sinkhole


class CensorMiddlebox(Middlebox):
    """An AS-resident censor.

    Parameters
    ----------
    asn, country_code:
        Identity and jurisdiction.
    policy:
        Time-varying category blocklist.
    techniques:
        The techniques this censor deploys; each blocked domain is pinned
        to one of them deterministically.
    scoped:
        Scoped censors act only on traffic whose *client* is in their own
        country (ACL deployments); unscoped censors act on everything that
        transits them — the source of censorship leakage.
    categories:
        The category database used to classify observed domains.
    country_by_asn:
        Country codes of all ASes (for the scope check).
    fire_probability:
        Per-session probability that a matching censor actually acts;
        slightly below one, modelling overloaded DPI boxes.
    mimic_ttl_fraction / suppress_fraction:
        Fractions of domains for which injected packets mimic server TTLs /
        the censor also resets the server side.
    """

    def __init__(
        self,
        asn: int,
        country_code: str,
        policy: CensorshipPolicy,
        techniques: Sequence[Technique],
        scoped: bool,
        categories: CategoryDatabase,
        country_by_asn: Dict[int, str],
        seed: int = 0,
        fire_probability: float = 0.995,
        mimic_ttl_fraction: float = 0.15,
        suppress_fraction: float = 0.5,
        domain_coverage: float = 0.6,
        blockpage_template: str = "gov-filter",
    ) -> None:
        super().__init__(asn)
        if not techniques:
            raise ValueError("censor needs at least one technique")
        self.country_code = country_code
        self.policy = policy
        self.techniques = tuple(dict.fromkeys(techniques))
        self.scoped = scoped
        self.categories = categories
        self.country_by_asn = country_by_asn
        self.seed = derive_seed(seed, "censor", asn)
        self.fire_probability = fire_probability
        self.mimic_ttl_fraction = mimic_ttl_fraction
        self.suppress_fraction = suppress_fraction
        if not (0.0 < domain_coverage <= 1.0):
            raise ValueError("domain_coverage must be in (0, 1]")
        self.domain_coverage = domain_coverage
        self.blockpage_template = blockpage_template

    # -- deterministic per-domain behaviour --------------------------------

    def _domain_rng(self, domain: str) -> DeterministicRNG:
        return DeterministicRNG(self.seed, "domain", domain)

    def technique_for(self, domain: str) -> Technique:
        """The technique this censor applies to ``domain`` (stable)."""
        return self._domain_rng(domain).pick(list(self.techniques))

    def mimics_ttl_for(self, domain: str) -> bool:
        """Whether injections for ``domain`` mimic the server TTL (stable)."""
        rng = self._domain_rng(domain)
        rng.random()  # burn the technique draw to decorrelate
        return rng.chance(self.mimic_ttl_fraction)

    def suppresses_server_for(self, domain: str) -> bool:
        """Whether the censor also resets the server side (stable)."""
        rng = self._domain_rng(domain)
        rng.random()
        rng.random()
        return rng.chance(self.suppress_fraction)

    # -- targeting ----------------------------------------------------------

    def covers_domain(self, domain: str) -> bool:
        """Whether ``domain`` is on this censor's blocklist at all (stable).

        Real per-URL blocklists never cover a whole category; each domain
        of a blocked category is on the list with ``domain_coverage``
        probability, decided once per (censor, domain).
        """
        rng = self._domain_rng(domain)
        for _ in range(3):
            rng.random()  # decorrelate from technique/mimic/suppress draws
        return rng.chance(self.domain_coverage)

    def targets(self, domain: str, client_asn: int, timestamp: int) -> bool:
        """Whether this censor would act on ``domain`` for this client now."""
        if self.scoped and self.country_by_asn.get(client_asn) != self.country_code:
            return False
        if not self.covers_domain(domain):
            return False
        category = self.categories.categorize(domain)
        return self.policy.blocks(category, timestamp)

    def expected_anomalies(self, domain: str) -> FrozenSet[Anomaly]:
        """Ground truth: anomalies this censor can cause for ``domain``."""
        technique = self.technique_for(domain)
        return technique.anomalies(mimics_ttl=self.mimics_ttl_for(domain))

    def all_possible_anomalies(self) -> FrozenSet[Anomaly]:
        """Union of anomaly signatures over all of this censor's techniques."""
        out: set = set()
        for technique in self.techniques:
            out |= technique.anomalies()
        return frozenset(out)

    # -- middlebox interface -------------------------------------------------

    def on_dns_query(self, context: SessionContext) -> Optional[DnsInjection]:
        if not self.targets(context.domain, context.client_asn, context.timestamp):
            return None
        if self.technique_for(context.domain) is not Technique.DNS_INJECT:
            return None
        if not context.rng.chance(self.fire_probability):
            return None
        return DnsInjection(
            kind=DnsInjectAction.BOGUS_ADDRESS,
            forged_address=_SINKHOLE_ADDRESS,
            injector_asn=self.asn,
        )

    def on_tcp_session(self, context: SessionContext) -> Optional[TcpAction]:
        if not self.targets(context.domain, context.client_asn, context.timestamp):
            return None
        technique = self.technique_for(context.domain)
        if not technique.is_tcp:
            return None
        if not context.rng.chance(self.fire_probability):
            return None
        mimic = self.mimics_ttl_for(context.domain)
        suppress = self.suppresses_server_for(context.domain)
        if technique is Technique.RST_INJECT:
            return TcpAction(
                kind=TcpActionKind.RST_INJECT,
                injector_asn=self.asn,
                mimic_server_ttl=mimic,
                suppress_server=suppress,
            )
        if technique is Technique.SEQ_TAMPER:
            mode = (
                SeqTamperMode.OVERLAP
                if self._domain_rng(context.domain).randrange(2) == 0
                else SeqTamperMode.GAP
            )
            return TcpAction(
                kind=TcpActionKind.SEQ_TAMPER,
                injector_asn=self.asn,
                mimic_server_ttl=mimic,
                seq_mode=mode,
            )
        if technique is Technique.BLOCKPAGE_INJECT:
            return TcpAction(
                kind=TcpActionKind.BLOCKPAGE_INJECT,
                injector_asn=self.asn,
                mimic_server_ttl=mimic,
                suppress_server=suppress,
                blockpage_html=render_blockpage(
                    self.blockpage_template, context.domain, self.asn
                ),
            )
        if technique is Technique.BLOCKPAGE_PROXY:
            return TcpAction(
                kind=TcpActionKind.BLOCKPAGE_PROXY,
                injector_asn=self.asn,
                blockpage_html=render_blockpage(
                    self.blockpage_template, context.domain, self.asn
                ),
            )
        if technique is Technique.THROTTLE:
            return TcpAction(
                kind=TcpActionKind.THROTTLE,
                injector_asn=self.asn,
                throttle_factor=0.25,
            )
        return None


__all__ = ["Technique", "CensorMiddlebox"]
