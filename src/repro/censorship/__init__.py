"""Censor models: on-path middleboxes, policies, and deployment.

The synthetic world's censors are :class:`~repro.netsim.middlebox.Middlebox`
implementations attached to ASes.  Each censor has:

- a **policy** (:mod:`~repro.censorship.policy`): which URL categories it
  blocks, changing over time (policy churn is one of the paper's two causes
  of unsolvable CNFs);
- a **technique** per domain (:mod:`~repro.censorship.censor`): DNS
  injection, RST injection, sequence tampering, blockpage injection,
  transparent-proxy blockpages, or throttling — each leaving its
  characteristic packet artefacts;
- a **scope**: scoped censors only act on traffic of clients in their own
  country (ACL-style deployments); unscoped censors act on *all* transiting
  traffic, which is precisely what produces censorship leakage.

:mod:`~repro.censorship.deployment` places censors in a topology and keeps
the ground truth that tests and benchmarks validate against.
"""

from repro.censorship.blockpage import BLOCKPAGE_TEMPLATES, render_blockpage
from repro.censorship.censor import CensorMiddlebox, Technique
from repro.censorship.deployment import (
    CensorDeployment,
    CountryCensorshipProfile,
    DeploymentConfig,
    deploy_censors,
)
from repro.censorship.policy import CensorshipPolicy, PolicyEpoch

__all__ = [
    "Technique",
    "CensorMiddlebox",
    "CensorshipPolicy",
    "PolicyEpoch",
    "BLOCKPAGE_TEMPLATES",
    "render_blockpage",
    "CensorDeployment",
    "DeploymentConfig",
    "CountryCensorshipProfile",
    "deploy_censors",
]
