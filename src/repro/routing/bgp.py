"""Per-destination BGP route computation.

For a destination AS ``d``, every other AS's best route is computed with the
standard three-phase propagation that realizes Gao-Rexford policies:

1. **Customer routes** spread *upward*: ``d`` announces to its providers,
   who announce to their providers, and so on.  Every AS reached this way
   holds a customer route (it is paid to reach ``d``).
2. **Peer routes** spread *sideways, once*: ASes holding customer routes
   announce across peer links; a peer that lacks a customer route adopts.
3. **Provider routes** spread *downward*: any AS with a route announces to
   its customers, who adopt if they have nothing better; this cascades.

Within a phase, shorter AS paths win and remaining ties fall to
:func:`~repro.routing.policy.tie_break_rank`, which takes a *salt* — the
churn engine's lever for flipping decisions.  Links listed in
``down_links`` are ignored entirely (failed).

The result is a :class:`RoutingTable` mapping each source to its AS path to
``d``.  Every emitted path is valley-free by construction; tests assert it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.routing.policy import RouteClass, tie_break_rank
from repro.topology.graph import ASGraph

ASPath = Tuple[int, ...]
LinkKey = Tuple[int, int]


def _link_key(a: int, b: int) -> LinkKey:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class RoutingTable:
    """Best AS paths from every source to one destination.

    ``paths[src]`` is the AS-level path ``(src, ..., dst)``; sources with no
    policy-compliant route (partitioned by failures) are absent.
    """

    destination: int
    paths: Dict[int, ASPath]

    def path_from(self, src: int) -> Optional[ASPath]:
        """The path from ``src``, or None if unreachable."""
        if src == self.destination:
            return (src,)
        return self.paths.get(src)

    def __len__(self) -> int:
        return len(self.paths)


class RouteComputer:
    """Computes and caches routing tables over a fixed AS graph."""

    def __init__(self, graph: ASGraph, cache_size: int = 4096) -> None:
        self.graph = graph
        self._cache: Dict[Tuple[int, int, FrozenSet[LinkKey]], RoutingTable] = {}
        self._cache_size = cache_size

    def routing_table(
        self,
        destination: int,
        salt: int = 0,
        down_links: Iterable[LinkKey] = (),
    ) -> RoutingTable:
        """The routing table toward ``destination`` under the given state.

        ``salt`` perturbs tie-breaks; ``down_links`` is a collection of
        canonical link keys (lower ASN first) considered failed.
        """
        down = frozenset(_link_key(*key) for key in down_links)
        cache_key = (destination, salt, down)
        cached = self._cache.get(cache_key)
        if cached is not None:
            return cached
        table = self._compute(destination, salt, down)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()  # simple bound; tables are cheap to rebuild
        self._cache[cache_key] = table
        return table

    # ------------------------------------------------------------------

    def _up(self, asn: int, down: FrozenSet[LinkKey]) -> Iterable[int]:
        return (
            p
            for p in self.graph.providers_of(asn)
            if _link_key(asn, p) not in down
        )

    def _downhill(self, asn: int, down: FrozenSet[LinkKey]) -> Iterable[int]:
        return (
            c
            for c in self.graph.customers_of(asn)
            if _link_key(asn, c) not in down
        )

    def _sideways(self, asn: int, down: FrozenSet[LinkKey]) -> Iterable[int]:
        return (
            p
            for p in self.graph.peers_of(asn)
            if _link_key(asn, p) not in down
        )

    def _compute(
        self, destination: int, salt: int, down: FrozenSet[LinkKey]
    ) -> RoutingTable:
        if destination not in self.graph.registry:
            raise KeyError(f"AS{destination} is not in the topology")
        best_class: Dict[int, RouteClass] = {destination: RouteClass.CUSTOMER}
        best_path: Dict[int, ASPath] = {destination: (destination,)}

        # Phase 1 — customer routes climb provider edges.  Dijkstra on
        # (length, tie_rank) so equal-length decisions are salt-stable.
        frontier: list = [(0, 0, destination)]
        settled: set = set()
        while frontier:
            length, _, asn = heapq.heappop(frontier)
            if asn in settled:
                continue
            settled.add(asn)
            for provider in self._up(asn, down):
                if provider in settled:
                    continue
                candidate: ASPath = (provider,) + best_path[asn]
                rank = tie_break_rank(provider, asn, salt)
                incumbent = best_path.get(provider)
                if incumbent is None or self._better(
                    provider, candidate, incumbent, salt
                ):
                    best_path[provider] = candidate
                    best_class[provider] = RouteClass.CUSTOMER
                    heapq.heappush(frontier, (len(candidate) - 1, rank, provider))

        customer_holders = list(best_path)

        # Phase 2 — one peer hop from any customer-route holder.
        peer_path: Dict[int, ASPath] = {}
        for holder in customer_holders:
            for peer in self._sideways(holder, down):
                if peer in best_path:
                    continue  # customer route always beats a peer route
                candidate = (peer,) + best_path[holder]
                incumbent = peer_path.get(peer)
                if incumbent is None or self._better(peer, candidate, incumbent, salt):
                    peer_path[peer] = candidate
        for asn, path in peer_path.items():
            best_path[asn] = path
            best_class[asn] = RouteClass.PEER

        # Phase 3 — provider routes cascade down customer edges.
        frontier = [
            (len(best_path[asn]) - 1, 0, asn) for asn in best_path
        ]
        heapq.heapify(frontier)
        while frontier:
            length, _, asn = heapq.heappop(frontier)
            if len(best_path[asn]) - 1 != length:
                continue  # stale entry
            for customer in self._downhill(asn, down):
                if best_class.get(customer) in (RouteClass.CUSTOMER, RouteClass.PEER):
                    continue  # provider route can't displace those
                candidate = (customer,) + best_path[asn]
                incumbent = best_path.get(customer)
                if incumbent is None or self._better(
                    customer, candidate, incumbent, salt
                ):
                    best_path[customer] = candidate
                    best_class[customer] = RouteClass.PROVIDER
                    rank = tie_break_rank(customer, asn, salt)
                    heapq.heappush(frontier, (len(candidate) - 1, rank, customer))

        best_path.pop(destination, None)
        return RoutingTable(destination=destination, paths=best_path)

    def _better(
        self, asn: int, candidate: ASPath, incumbent: ASPath, salt: int
    ) -> bool:
        """Whether ``candidate`` beats ``incumbent`` at ``asn`` (same class)."""
        if len(candidate) != len(incumbent):
            return len(candidate) < len(incumbent)
        return tie_break_rank(asn, candidate[1], salt) < tie_break_rank(
            asn, incumbent[1], salt
        )


__all__ = ["RouteComputer", "RoutingTable", "ASPath", "LinkKey"]
