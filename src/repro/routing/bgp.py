"""Per-destination BGP route computation.

For a destination AS ``d``, every other AS's best route is computed with the
standard three-phase propagation that realizes Gao-Rexford policies:

1. **Customer routes** spread *upward*: ``d`` announces to its providers,
   who announce to their providers, and so on.  Every AS reached this way
   holds a customer route (it is paid to reach ``d``).
2. **Peer routes** spread *sideways, once*: ASes holding customer routes
   announce across peer links; a peer that lacks a customer route adopts.
3. **Provider routes** spread *downward*: any AS with a route announces to
   its customers, who adopt if they have nothing better; this cascades.

Within a phase, shorter AS paths win and remaining ties fall to
:func:`~repro.routing.policy.tie_break_rank`, which takes a *salt* — the
churn engine's lever for flipping decisions.  Links listed in
``down_links`` are ignored entirely (failed).

The result is a :class:`RoutingTable` mapping each source to its AS path to
``d``.  Every emitted path is valley-free by construction; tests assert it.

Route computation is the campaign's hottest path (churn discovery computes
hundreds of tables per run), so :class:`RouteComputer` front-loads the
invariant work: adjacency is snapshotted into sorted tuples at
construction, tie-break ranks are memoized per salt (the blake2b hash in
:func:`tie_break_rank` dominates a naive compute), and finished tables are
kept in an LRU cache — evicting one cold table at a time instead of
discarding the whole working set.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.routing.policy import RouteClass, tie_break_rank
from repro.topology.graph import ASGraph

ASPath = Tuple[int, ...]
LinkKey = Tuple[int, int]


def _link_key(a: int, b: int) -> LinkKey:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class RoutingTable:
    """Best AS paths from every source to one destination.

    ``paths[src]`` is the AS-level path ``(src, ..., dst)``; sources with no
    policy-compliant route (partitioned by failures) are absent.

    ``phase1_paths`` and ``route_classes`` (1 = customer, 2 = peer,
    3 = provider) are internal per-phase byproducts recorded for intact
    tables only; the incremental failed-link recomputation seeds from
    them.  They carry no information beyond the propagation that produced
    ``paths`` and are excluded from equality.
    """

    destination: int
    paths: Dict[int, ASPath]
    phase1_paths: Optional[Dict[int, ASPath]] = field(
        default=None, compare=False, repr=False
    )
    route_classes: Optional[Dict[int, int]] = field(
        default=None, compare=False, repr=False
    )

    def path_from(self, src: int) -> Optional[ASPath]:
        """The path from ``src``, or None if unreachable."""
        if src == self.destination:
            return (src,)
        return self.paths.get(src)

    def __len__(self) -> int:
        return len(self.paths)


@dataclass
class RouteComputerStats:
    """Counters exposed for perf reports and regression tests."""

    tables_computed: int = 0
    tables_incremental: int = 0  # failed-link tables seeded from a base
    cache_hits: int = 0
    cache_evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "tables_computed": self.tables_computed,
            "tables_incremental": self.tables_incremental,
            "cache_hits": self.cache_hits,
            "cache_evictions": self.cache_evictions,
        }


class RouteComputer:
    """Computes and caches routing tables over a fixed AS graph.

    ``cache_size`` bounds the table cache with LRU eviction; 0 disables
    caching entirely (every call recomputes — used by micro-benchmarks).
    """

    def __init__(self, graph: ASGraph, cache_size: int = 4096) -> None:
        self.graph = graph
        self._cache: "OrderedDict[Tuple[int, int, FrozenSet[LinkKey]], RoutingTable]" = (
            OrderedDict()
        )
        self._cache_size = cache_size
        self.stats = RouteComputerStats()
        # Adjacency snapshot: sorted tuples iterate faster than live sets
        # and give a deterministic neighbor order independent of set-hash
        # layout.  The graph is immutable for the computer's lifetime.
        self._providers: Dict[int, Tuple[int, ...]] = {}
        self._customers: Dict[int, Tuple[int, ...]] = {}
        self._peers: Dict[int, Tuple[int, ...]] = {}
        for autonomous_system in graph.registry:
            asn = autonomous_system.asn
            self._providers[asn] = tuple(sorted(graph.providers_of(asn)))
            self._customers[asn] = tuple(sorted(graph.customers_of(asn)))
            self._peers[asn] = tuple(sorted(graph.peers_of(asn)))
        # Tie-break ranks per salt, fully populated for every directed
        # adjacency on first use of a salt: {asn: {neighbor: rank}}.  Rows
        # keyed by small ints probe faster than tuple keys in the hot loop.
        self._ranks: Dict[int, Dict[int, Dict[int, int]]] = {}
        # Per-base-table link-usage index: (destination, salt) → (table,
        # {canonical link: set of nodes whose path traverses it}).  Built
        # once per intact table and shared by every single-link-failure
        # recomputation against it; the table identity check guards
        # against LRU-evicted-and-recomputed bases.  Bounded alongside
        # the table cache so it cannot pin evicted tables forever.
        self._link_users: Dict[
            Tuple[int, int], Tuple[RoutingTable, Dict[LinkKey, set]]
        ] = {}
        self._link_users_max = max(64, cache_size)
        # Per-compute scratch, allocated once and indexed by ASN (list
        # indexing beats dict probing in the propagation loops).  Entries
        # touched by a compute are reset afterwards via the discovery list.
        max_asn = max((a.asn for a in graph.registry), default=0)
        self._scratch_path: List[Optional[ASPath]] = [None] * (max_asn + 1)
        self._scratch_class: List[int] = [0] * (max_asn + 1)
        # 0 = unset, 1 = customer, 2 = peer, 3 = provider
        self._scratch_settled = bytearray(max_asn + 1)

    def routing_table(
        self,
        destination: int,
        salt: int = 0,
        down_links: Iterable[LinkKey] = (),
    ) -> RoutingTable:
        """The routing table toward ``destination`` under the given state.

        ``salt`` perturbs tie-breaks; ``down_links`` is a collection of
        canonical link keys (lower ASN first) considered failed.
        """
        down = frozenset(_link_key(*key) for key in down_links)
        cache_key = (destination, salt, down)
        cached = self._cache.get(cache_key)
        if cached is not None:
            self._cache.move_to_end(cache_key)
            self.stats.cache_hits += 1
            return cached
        table = None
        if len(down) == 1:
            # Single-link failures (the churn engine's case) recompute
            # incrementally from the intact table when it is in cache:
            # only routes traversing the failed link can change.
            base = self._cache.get((destination, salt, frozenset()))
            if base is not None and base.phase1_paths is not None:
                table = self._compute_failed(
                    destination, salt, next(iter(down)), base
                )
        if table is None:
            table = self._compute(destination, salt, down)
        if self._cache_size > 0:
            if len(self._cache) >= self._cache_size:
                self._cache.popitem(last=False)  # evict least recently used
                self.stats.cache_evictions += 1
            self._cache[cache_key] = table
        return table

    # ------------------------------------------------------------------

    def _rank_table(self, salt: int) -> Dict[int, Dict[int, int]]:
        table = self._ranks.get(salt)
        if table is None:
            # One blake2b per directed adjacency, once per salt — the
            # propagation loops then index the rows directly.
            table = self._ranks[salt] = {}
            for adjacency in (self._providers, self._customers, self._peers):
                for asn, neighbors in adjacency.items():
                    row = table.setdefault(asn, {})
                    for neighbor in neighbors:
                        row[neighbor] = tie_break_rank(asn, neighbor, salt)
        return table

    def _compute(
        self, destination: int, salt: int, down: FrozenSet[LinkKey]
    ) -> RoutingTable:
        """Three-phase Gao-Rexford propagation.

        Two structural optimizations keep the loops tight without changing
        a single decision: (1) every relaxation depends only on path
        *length* and the deciding AS's tie-break rank toward the next hop,
        so candidate path tuples are built only when a candidate wins;
        (2) per-node state lives in ASN-indexed scratch arrays (allocated
        once per computer), with the discovery list both preserving the
        original insertion order of the result and driving the reset.
        """
        if destination not in self.graph.registry:
            raise KeyError(f"AS{destination} is not in the topology")
        self.stats.tables_computed += 1
        providers = self._providers
        customers = self._customers
        peers = self._peers
        # Every (deciding AS, next hop) pair the phases compare is a
        # directed adjacency, so the fully-populated per-salt table can be
        # indexed without a fallback.
        ranks = self._rank_table(salt)
        # Failed links, indexed by endpoint for O(1) per-edge checks.
        blocked: Dict[int, set] = {}
        for a, b in down:
            blocked.setdefault(a, set()).add(b)
            blocked.setdefault(b, set()).add(a)
        blocked_get = blocked.get

        path_of = self._scratch_path
        class_of = self._scratch_class  # 1 customer, 2 peer, 3 provider
        settled = self._scratch_settled
        discovered: List[int] = [destination]
        path_of[destination] = (destination,)
        class_of[destination] = 1

        try:
            # Phase 1 — customer routes climb provider edges.  Dijkstra on
            # (length, tie_rank) so equal-length decisions are salt-stable.
            frontier: list = [(0, 0, destination)]
            while frontier:
                length, _, asn = heappop(frontier)
                if settled[asn]:
                    continue
                settled[asn] = 1
                bad = blocked_get(asn)
                base_path = path_of[asn]
                candidate_size = len(base_path) + 1
                for provider in providers[asn]:
                    if settled[provider] or (
                        bad is not None and provider in bad
                    ):
                        continue
                    incumbent = path_of[provider]
                    if incumbent is None:
                        take = True
                        discovered.append(provider)
                    elif candidate_size != (incumbent_size := len(incumbent)):
                        take = candidate_size < incumbent_size
                    else:
                        row = ranks[provider]
                        take = row[asn] < row[incumbent[1]]
                    if take:
                        path_of[provider] = (provider,) + base_path
                        class_of[provider] = 1
                        heappush(
                            frontier,
                            (candidate_size - 1, ranks[provider][asn], provider),
                        )

            customer_holders = list(discovered)
            # Intact tables snapshot their phase-1 routes and final
            # classes so single-link-failure tables can recompute only
            # the affected nodes (see _compute_failed).
            phase1_snapshot: Optional[Dict[int, ASPath]] = (
                {asn: path_of[asn] for asn in discovered} if not down else None
            )

            # Phase 2 — one peer hop from any customer-route holder.
            peer_path: Dict[int, ASPath] = {}
            peer_path_get = peer_path.get
            for holder in customer_holders:
                holder_peers = peers[holder]
                if not holder_peers:
                    continue
                bad = blocked_get(holder)
                holder_path = path_of[holder]
                candidate_size = len(holder_path) + 1
                for peer in holder_peers:
                    if path_of[peer] is not None or (
                        bad is not None and peer in bad
                    ):
                        continue  # customer route always beats a peer route
                    incumbent = peer_path_get(peer)
                    if incumbent is None:
                        take = True
                    elif candidate_size != (incumbent_size := len(incumbent)):
                        take = candidate_size < incumbent_size
                    else:
                        row = ranks[peer]
                        take = row[holder] < row[incumbent[1]]
                    if take:
                        peer_path[peer] = (peer,) + holder_path
            for asn, path in peer_path.items():
                path_of[asn] = path
                class_of[asn] = 2
                discovered.append(asn)

            # Phase 3 — provider routes cascade down customer edges.  Stub
            # ASes (no customers) can never relax anyone; keeping them out
            # of the frontier skips the majority of a typical topology.
            frontier = [
                (len(path_of[asn]) - 1, 0, asn)
                for asn in discovered
                if customers[asn]
            ]
            heapify(frontier)
            while frontier:
                length, _, asn = heappop(frontier)
                base_path = path_of[asn]
                if len(base_path) - 1 != length:
                    continue  # stale entry
                bad = blocked_get(asn)
                candidate_size = length + 2
                for customer in customers[asn]:
                    customer_class = class_of[customer]
                    if customer_class == 1 or customer_class == 2:
                        continue  # provider route can't displace those
                    if bad is not None and customer in bad:
                        continue
                    incumbent = path_of[customer]
                    if incumbent is None:
                        take = True
                        discovered.append(customer)
                    elif candidate_size != (incumbent_size := len(incumbent)):
                        take = candidate_size < incumbent_size
                    else:
                        row = ranks[customer]
                        take = row[asn] < row[incumbent[1]]
                    if take:
                        path_of[customer] = (customer,) + base_path
                        class_of[customer] = 3
                        if customers[customer]:
                            heappush(
                                frontier,
                                (
                                    candidate_size - 1,
                                    ranks[customer][asn],
                                    customer,
                                ),
                            )

            paths: Dict[int, ASPath] = {}
            for asn in discovered:
                if asn != destination:
                    paths[asn] = path_of[asn]
            classes_snapshot: Optional[Dict[int, int]] = (
                {asn: class_of[asn] for asn in discovered}
                if not down
                else None
            )
        finally:
            for asn in discovered:
                path_of[asn] = None
                class_of[asn] = 0
                settled[asn] = 0
        return RoutingTable(
            destination=destination,
            paths=paths,
            phase1_paths=phase1_snapshot,
            route_classes=classes_snapshot,
        )

    def _users_of(
        self, destination: int, salt: int, base: RoutingTable
    ) -> Dict[LinkKey, set]:
        """links → nodes whose path in ``base`` traverses the link.

        Built once per intact table (O(total path length)) and reused by
        every single-link-failure recomputation against it.
        """
        key = (destination, salt)
        cached = self._link_users.get(key)
        if cached is not None and cached[0] is base:
            return cached[1]
        if len(self._link_users) >= self._link_users_max:
            self._link_users.clear()
        index: Dict[LinkKey, set] = {}
        for node, path in base.paths.items():
            previous = path[0]
            for hop in path[1:]:
                link = (
                    (previous, hop) if previous < hop else (hop, previous)
                )
                bucket = index.get(link)
                if bucket is None:
                    bucket = index[link] = set()
                bucket.add(node)
                previous = hop
        self._link_users[key] = (base, index)
        return index

    def _compute_failed(
        self,
        destination: int,
        salt: int,
        link: LinkKey,
        base: RoutingTable,
    ) -> RoutingTable:
        """One-link-failure table, seeded from the intact ``base`` table.

        Removing a link can neither create new routes nor improve or
        displace an existing one, so every node whose chosen path does
        not traverse the failed link keeps exactly its base route (per
        phase: a customer route is final the moment it exists, peer and
        provider routes compose unaffected suffixes).  Each propagation
        phase therefore re-runs restricted to the affected nodes, with
        the unaffected routes as fixed, already-settled boundary — the
        same (length, tie-rank) fixpoint the full computation reaches,
        at a fraction of the work.  ``tests/test_routing_policy.py``
        pins equality against the full recomputation exhaustively.
        """
        self.stats.tables_computed += 1
        self.stats.tables_incremental += 1
        a, b = link
        providers = self._providers
        customers = self._customers
        peers = self._peers
        ranks = self._rank_table(salt)

        # Nodes whose base route traverses the failed link — the only
        # nodes whose routes can change.  (Phase-1 customer routes are
        # final for their holders, so one final-path index serves both
        # the phase-1 and the overall affected set.)
        users = self._users_of(destination, salt, base).get(link)
        if users is None:
            users = frozenset()

        # ---- phase 1: recompute customer routes of affected holders ----
        base_phase1 = base.phase1_paths or {}
        affected1 = {node for node in users if node in base_phase1}
        phase1: Dict[int, ASPath] = dict(base_phase1)
        for node in affected1:
            del phase1[node]
        if affected1:
            # Seeds: unaffected holders adjacent to an affected provider.
            seeds: set = set()
            for node in affected1:
                for customer in customers[node]:
                    if customer in phase1:
                        seeds.add(customer)
            frontier: list = [
                (len(phase1[node]) - 1, 0, node) for node in seeds
            ]
            heapify(frontier)
            settled = set(phase1)
            while frontier:
                length, _, asn = heappop(frontier)
                if asn in affected1:
                    if asn in settled:
                        continue
                    settled.add(asn)
                base_path = phase1[asn]
                candidate_size = len(base_path) + 1
                for provider in providers[asn]:
                    if provider not in affected1 or provider in settled:
                        continue  # unaffected routes are final
                    if (asn == a and provider == b) or (
                        asn == b and provider == a
                    ):
                        continue  # the failed link itself
                    incumbent = phase1.get(provider)
                    if incumbent is None:
                        take = True
                    elif candidate_size != (incumbent_size := len(incumbent)):
                        take = candidate_size < incumbent_size
                    else:
                        row = ranks[provider]
                        take = row[asn] < row[incumbent[1]]
                    if take:
                        phase1[provider] = (provider,) + base_path
                        heappush(
                            frontier,
                            (candidate_size - 1, ranks[provider][asn], provider),
                        )

        # ---- phase 2: peer routes, rescanned over the new holder set ----
        # Linear in peer adjacency; recomputing it wholesale is both cheap
        # and trivially identical to the from-scratch pass.
        peer_path: Dict[int, ASPath] = {}
        peer_path_get = peer_path.get
        for holder, holder_path in phase1.items():
            holder_peers = peers[holder]
            if not holder_peers:
                continue
            candidate_size = len(holder_path) + 1
            for peer in holder_peers:
                if peer in phase1:
                    continue  # customer route always beats a peer route
                if (holder == a and peer == b) or (holder == b and peer == a):
                    continue
                incumbent = peer_path_get(peer)
                if incumbent is None:
                    take = True
                elif candidate_size != (incumbent_size := len(incumbent)):
                    take = candidate_size < incumbent_size
                else:
                    row = ranks[peer]
                    take = row[holder] < row[incumbent[1]]
                if take:
                    peer_path[peer] = (peer,) + holder_path

        # ---- phase 3: provider routes cascade into the affected rest ----
        best_path: Dict[int, ASPath] = dict(phase1)
        best_path.update(peer_path)
        fixed: set = set(best_path)  # customer/peer routes are final
        base_classes = base.route_classes or {}
        for node, path in base.paths.items():
            if (
                node not in fixed
                and node not in users
                and base_classes.get(node) == 3
            ):
                best_path[node] = path
                fixed.add(node)
        frontier = [
            (len(path) - 1, 0, node)
            for node, path in best_path.items()
            if customers[node]
        ]
        heapify(frontier)
        while frontier:
            length, _, asn = heappop(frontier)
            base_path = best_path[asn]
            if len(base_path) - 1 != length:
                continue  # stale entry
            candidate_size = length + 2
            for customer in customers[asn]:
                if customer in fixed:
                    continue  # final: unaffected, or customer/peer class
                if (asn == a and customer == b) or (
                    asn == b and customer == a
                ):
                    continue
                incumbent = best_path.get(customer)
                if incumbent is None:
                    take = True
                elif candidate_size != (incumbent_size := len(incumbent)):
                    take = candidate_size < incumbent_size
                else:
                    row = ranks[customer]
                    take = row[asn] < row[incumbent[1]]
                if take:
                    best_path[customer] = (customer,) + base_path
                    if customers[customer]:
                        heappush(
                            frontier,
                            (
                                candidate_size - 1,
                                ranks[customer][asn],
                                customer,
                            ),
                        )

        best_path.pop(destination, None)
        return RoutingTable(destination=destination, paths=best_path)


__all__ = [
    "RouteComputer",
    "RouteComputerStats",
    "RoutingTable",
    "ASPath",
    "LinkKey",
]
