"""Gao-Rexford routing policy: preference classes and valley-freedom.

Business relationships induce the classic export rule: an AS announces
customer routes to everybody, but announces peer- and provider-learned
routes *only to customers*.  The induced path shape is "valley-free":
a (possibly empty) uphill segment of customer→provider hops, at most one
peer hop, then a (possibly empty) downhill segment of provider→customer
hops.  Route selection prefers customer routes over peer routes over
provider routes, then shorter AS paths, then a deterministic tie-break.
"""

from __future__ import annotations

import enum
import hashlib
from typing import List, Optional, Sequence, Tuple

from repro.topology.graph import ASGraph


class RouteClass(enum.IntEnum):
    """Preference class of a route, smaller = more preferred."""

    CUSTOMER = 0  # learned from a customer (we are paid to carry it)
    PEER = 1      # learned from a peer (settlement-free)
    PROVIDER = 2  # learned from a provider (we pay to use it)


def edge_kind(graph: ASGraph, frm: int, to: int) -> Optional[str]:
    """The directed kind of hop ``frm -> to``.

    Returns ``"up"`` (customer to provider), ``"down"`` (provider to
    customer), ``"peer"``, or None when the ASes are not adjacent.
    """
    if to in graph.providers_of(frm):
        return "up"
    if to in graph.customers_of(frm):
        return "down"
    if to in graph.peers_of(frm):
        return "peer"
    return None


def route_class_sequence(graph: ASGraph, path: Sequence[int]) -> List[str]:
    """The hop-kind sequence of an AS path.

    Raises ValueError when consecutive ASes are not adjacent.
    """
    kinds: List[str] = []
    for frm, to in zip(path, path[1:]):
        kind = edge_kind(graph, frm, to)
        if kind is None:
            raise ValueError(f"AS{frm} and AS{to} are not adjacent")
        kinds.append(kind)
    return kinds


def is_valley_free(graph: ASGraph, path: Sequence[int]) -> bool:
    """Whether ``path`` obeys the valley-free property.

    The automaton accepts ``up* peer? down*``.

    >>> # single-AS and adjacent two-AS paths are always valley-free
    """
    if len(path) <= 1:
        return True
    if len(set(path)) != len(path):
        return False  # loops are never exported by sane BGP speakers
    try:
        kinds = route_class_sequence(graph, path)
    except ValueError:
        return False
    state = "up"  # accepting states progress up -> peer -> down
    for kind in kinds:
        if state == "up":
            if kind == "up":
                continue
            state = "down" if kind == "down" else "peer_done"
        elif state == "peer_done":
            if kind != "down":
                return False
            state = "down"
        else:  # down
            if kind != "down":
                return False
    return True


def tie_break_rank(asn: int, neighbor: int, salt: int) -> int:
    """Deterministic pseudo-random rank for equal-preference candidates.

    Models the ad-hoc tie-breaks of real BGP (IGP cost, router IDs, hot
    potato) as a stable hash of (deciding AS, next hop, salt).  Churn flips
    tie-breaks by changing the salt, which is how the simulator produces
    path changes without failing links.
    """
    digest = hashlib.blake2b(
        f"{asn}|{neighbor}|{salt}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def candidate_sort_key(
    route_class: RouteClass, path_length: int, rank: int
) -> Tuple[int, int, int]:
    """Sort key implementing the full decision process (lower wins)."""
    return (int(route_class), path_length, rank)


__all__ = [
    "RouteClass",
    "edge_kind",
    "route_class_sequence",
    "is_valley_free",
    "tie_break_rank",
    "candidate_sort_key",
]
