"""BGP-style policy routing and network-level path churn.

This package computes AS-level paths the way BGP's economics do —
Gao-Rexford valley-free routing with customer > peer > provider preference —
and layers a deterministic churn process on top, because path churn is the
paper's substitute for strategically placed tomography monitors.

- :mod:`~repro.routing.policy` — route preference, export rules, and
  valley-free validation,
- :mod:`~repro.routing.bgp` — per-destination route computation (three-phase
  propagation), with tie-break salts and link failures as inputs,
- :mod:`~repro.routing.churn` — per-pair churn schedules and the
  :class:`~repro.routing.churn.PathOracle` that the measurement platform
  queries for "the AS path from src to dst at time t".
"""

from repro.routing.bgp import RouteComputer, RoutingTable
from repro.routing.churn import ChurnConfig, PairSchedule, PathOracle
from repro.routing.policy import (
    RouteClass,
    is_valley_free,
    route_class_sequence,
)

__all__ = [
    "RouteComputer",
    "RoutingTable",
    "RouteClass",
    "is_valley_free",
    "route_class_sequence",
    "ChurnConfig",
    "PairSchedule",
    "PathOracle",
]
