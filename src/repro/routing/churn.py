"""Network-level path churn: per-pair schedules and the path oracle.

The paper's key enabler is that AS paths between a fixed (source,
destination) pair change over time — 25% of pairs within a day, rising to
67% within a year (Figure 3).  This module reproduces that phenomenon:

- **Alternative discovery.**  For a pair, genuinely distinct valley-free
  paths are discovered by recomputing routes under perturbed tie-break
  salts and under single-link failures along the canonical path.  Every
  alternative is a real policy path in the topology; churn never invents
  hops.
- **Pair schedules.**  Each pair draws a churn intensity from a mixture:
  a fraction of pairs is *stable* (never changes within the horizon), the
  rest switch between alternatives at exponential intervals with a
  per-pair rate drawn log-uniformly.  This mixture is what produces the
  day/week/month/year churn gradient.
- **The oracle.**  :class:`PathOracle` answers ``aspath_at(src, dst, t)``
  and is the only routing interface the measurement platform consumes.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.routing.bgp import ASPath, LinkKey, RouteComputer, RoutingTable
from repro.topology.graph import ASGraph
from repro.util.profiling import StageTimer, maybe_stage
from repro.util.rng import DeterministicRNG
from repro.util.timeutil import DAY


# Default per-pair switch-rate mixture: (probability, min, max switches/day),
# rates drawn log-uniformly within a bucket.  Calibrated so that the
# fraction of pairs whose path visibly changes within a day / week / month /
# year lands near the paper's 25% / 30% / 38% / 67% (Figure 3).
DEFAULT_RATE_MIXTURE: Tuple[Tuple[float, float, float], ...] = (
    (0.28, 2.5, 10.0),    # flappy: several switches a day
    (0.03, 0.3, 1.5),     # weekly-scale instability
    (0.07, 0.05, 0.25),   # monthly-scale
    (0.29, 0.002, 0.02),  # yearly-scale: one or two moves a year
)


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the churn process.

    ``stable_fraction`` is the probability that a pair never churns within
    the horizon; the remaining probability mass is split across the
    ``rate_mixture`` buckets (probability, min rate, max rate in switches
    per day).  The bimodal shape — many flappy pairs plus a long slow tail —
    is what yields the paper's gentle day→week→month gradient with a large
    jump at the year scale.
    """

    seed: int = 0
    stable_fraction: float = 0.33
    rate_mixture: Tuple[Tuple[float, float, float], ...] = DEFAULT_RATE_MIXTURE
    num_salts: int = 4
    max_link_failure_alternatives: int = 2
    horizon: int = 365 * DAY

    def __post_init__(self) -> None:
        if not (0.0 <= self.stable_fraction <= 1.0):
            raise ValueError("stable_fraction must be in [0, 1]")
        if not self.rate_mixture:
            raise ValueError("rate_mixture must have at least one bucket")
        for probability, low, high in self.rate_mixture:
            if probability < 0:
                raise ValueError("bucket probability must be non-negative")
            if low <= 0 or high < low:
                raise ValueError("need 0 < min_rate <= max_rate per bucket")
        total = self.stable_fraction + sum(p for p, _, _ in self.rate_mixture)
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"stable_fraction + mixture probabilities exceed 1: {total}"
            )
        if self.num_salts < 1:
            raise ValueError("num_salts must be >= 1")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")


@dataclass
class PairSchedule:
    """The resolved churn behaviour of one (src, dst) pair.

    ``alternatives`` are the distinct AS paths the pair toggles among
    (index 0 is the canonical path); ``switch_times`` are the instants a
    switch happens; ``choices[i]`` is the alternative index active after
    ``switch_times[i]``.
    """

    src: int
    dst: int
    alternatives: List[ASPath]
    switch_times: List[int]
    choices: List[int]

    def index_at(self, timestamp: int) -> int:
        """Alternative index active at ``timestamp``."""
        position = bisect.bisect_right(self.switch_times, timestamp)
        if position == 0:
            return 0
        return self.choices[position - 1]

    def path_at(self, timestamp: int) -> ASPath:
        """The AS path active at ``timestamp``."""
        return self.alternatives[self.index_at(timestamp)]

    @property
    def ever_churns(self) -> bool:
        """Whether the pair has at least one switch scheduled."""
        return bool(self.switch_times)

    def distinct_paths_in(self, start: int, end: int) -> List[ASPath]:
        """Distinct paths active at any point of ``[start, end)``."""
        seen: Dict[ASPath, None] = {self.path_at(start): None}
        left = bisect.bisect_right(self.switch_times, start)
        right = bisect.bisect_left(self.switch_times, end)
        for position in range(left, right):
            seen.setdefault(self.alternatives[self.choices[position]], None)
        return list(seen)


class PathOracle:
    """Answers "what was the AS path from src to dst at time t?".

    Schedules are built lazily per pair and cached; everything is
    deterministic in the configured seed, so any component (platform,
    analysis, tests) sees the same history.
    """

    def __init__(self, graph: ASGraph, config: ChurnConfig) -> None:
        self.graph = graph
        self.config = config
        self.routes = RouteComputer(graph)
        self.timer: Optional[StageTimer] = None
        self._schedules: Dict[Tuple[int, int], PairSchedule] = {}
        # Per-destination table families.  One destination serves every
        # source probing toward it, so the salted tables and the
        # failed-link tables are pinned here for the oracle's lifetime —
        # (src, dst) pairs sharing a destination never recompute them,
        # independent of the RouteComputer's LRU capacity.
        self._salted_tables: Dict[int, Tuple[RoutingTable, ...]] = {}
        self._failed_tables: Dict[Tuple[int, Tuple[int, int]], RoutingTable] = {}

    # -- alternatives ---------------------------------------------------

    def _salted_for(self, dst: int) -> Tuple[RoutingTable, ...]:
        """The per-salt routing tables toward ``dst`` (cached per dest)."""
        tables = self._salted_tables.get(dst)
        if tables is None:
            tables = tuple(
                self.routes.routing_table(dst, salt=salt)
                for salt in range(self.config.num_salts)
            )
            self._salted_tables[dst] = tables
        return tables

    def _failed_for(self, dst: int, hop: Tuple[int, int]) -> RoutingTable:
        """The table toward ``dst`` with one link failed (cached per dest)."""
        key = (dst, hop if hop[0] < hop[1] else (hop[1], hop[0]))
        table = self._failed_tables.get(key)
        if table is None:
            table = self.routes.routing_table(dst, salt=0, down_links=[hop])
            self._failed_tables[key] = table
        return table

    def alternatives_for(self, src: int, dst: int) -> List[ASPath]:
        """Distinct valley-free paths for the pair, canonical first."""
        paths: List[ASPath] = []
        seen: set = set()
        for table in self._salted_for(dst):
            path = table.path_from(src)
            if path is not None and path not in seen:
                seen.add(path)
                paths.append(path)
        if paths:
            canonical = paths[0]
            # Failing one canonical-path link at a time surfaces detour
            # paths that salts alone cannot reach.
            budget = self.config.max_link_failure_alternatives
            for hop in zip(canonical, canonical[1:]):
                if budget <= 0:
                    break
                path = self._failed_for(dst, hop).path_from(src)
                if path is not None and path not in seen:
                    seen.add(path)
                    paths.append(path)
                    budget -= 1
        return paths

    # -- schedules --------------------------------------------------------

    def schedule_for(self, src: int, dst: int) -> PairSchedule:
        """The (cached) churn schedule of a pair."""
        key = (src, dst)
        schedule = self._schedules.get(key)
        if schedule is None:
            with maybe_stage(self.timer, "routing.schedules"):
                schedule = self._build_schedule(src, dst)
            self._schedules[key] = schedule
        return schedule

    def _build_schedule(self, src: int, dst: int) -> PairSchedule:
        config = self.config
        alternatives = self.alternatives_for(src, dst)
        rng = DeterministicRNG(config.seed, "churn", src, dst)
        rate_per_day = self._draw_rate(rng)
        if len(alternatives) <= 1 or rate_per_day is None:
            return PairSchedule(src, dst, alternatives or [()], [], [])
        mean_gap = DAY / rate_per_day
        switch_times: List[int] = []
        choices: List[int] = []
        current = 0
        # Flappy pairs draw hundreds of switches per horizon; inline the
        # expovariate arithmetic (bit-identical to rng.expovariate) and use
        # the core randrange primitive directly.
        lambd = 1.0 / mean_gap
        uniform = rng.random
        randbelow = rng._randbelow
        num_others = len(alternatives) - 1
        horizon = config.horizon
        clock = -math.log(1.0 - uniform()) / lambd
        while clock < horizon:
            nxt = randbelow(num_others)
            if nxt >= current:
                nxt += 1  # uniform over alternatives other than current
            switch_times.append(int(clock))
            choices.append(nxt)
            current = nxt
            clock += -math.log(1.0 - uniform()) / lambd
        return PairSchedule(src, dst, alternatives, switch_times, choices)

    def _draw_rate(self, rng: DeterministicRNG) -> Optional[float]:
        """Draw a per-pair switch rate from the mixture; None = stable."""
        roll = rng.random()
        if roll < self.config.stable_fraction:
            return None
        cumulative = self.config.stable_fraction
        for probability, low, high in self.config.rate_mixture:
            cumulative += probability
            if roll < cumulative:
                return math.exp(rng.uniform(math.log(low), math.log(high)))
        return None  # residual probability mass counts as stable

    # -- the oracle interface ---------------------------------------------

    def aspath_at(self, src: int, dst: int, timestamp: int) -> Optional[ASPath]:
        """The AS path from ``src`` to ``dst`` at ``timestamp``.

        Returns None when the pair is unreachable (no policy path).
        """
        if src == dst:
            return (src,)
        schedule = self.schedule_for(src, dst)
        path = schedule.path_at(timestamp)
        return path if path else None

    def previous_path(
        self, src: int, dst: int, timestamp: int
    ) -> Optional[ASPath]:
        """The path active just before the last switch preceding ``timestamp``.

        Used to model traceroutes racing a route change (one of the three
        traceroutes still seeing the old path).  None when no switch
        happened yet.
        """
        schedule = self.schedule_for(src, dst)
        position = bisect.bisect_right(schedule.switch_times, timestamp)
        if position == 0:
            return None
        if position == 1:
            previous_index = 0
        else:
            previous_index = schedule.choices[position - 2]
        path = schedule.alternatives[previous_index]
        return path if path else None

    def pairs_cached(self) -> int:
        """Number of pair schedules materialized so far."""
        return len(self._schedules)


__all__ = ["ChurnConfig", "PairSchedule", "PathOracle"]
