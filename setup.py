"""Packaging for the CoNExT'17 censorship-localization reproduction.

Kept as a plain ``setup.py`` (no pyproject build isolation) so
``pip install -e .`` works in minimal environments without PEP 660
editable-wheel support.  The library is pure stdlib Python.
"""

from setuptools import find_packages, setup

setup(
    name="repro-churn-tomography",
    version="1.0.0",
    description=(
        "Reproduction of 'A Churn for the Better: Localizing Censorship "
        "using Network-level Path Churn and Network Tomography' (CoNExT 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-runner=repro.runner.cli:main",
            "repro-serve=repro.serve.cli:main",
            "repro-stream=repro.stream.cli:main",
        ],
    },
)
