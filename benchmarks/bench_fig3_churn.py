"""Figure 3 — distinct paths observed per (src, dst) pair over time.

The paper measures, for every (vantage AS, destination) pair and every
day/week/month/year window, how many distinct AS-level paths the
traceroutes observed — finding churn in ~25% of pairs per day, 30% per
week, 38% per month, and 67% per year, with 35% of pairs showing 5+ paths
over a year.

The sweep-scheduled world is used here because observing intra-day churn
requires multiple probes per pair per day (ICLab's continuous monitoring).
The campaign is 28 days, so the "year" column is reported from the churn
schedules (ground truth over a full simulated year) rather than from
observations.
"""

from repro.analysis.churn import churn_from_observations, churn_from_oracle
from repro.analysis.tables import format_comparison, format_histogram
from repro.anomaly import Anomaly
from repro.core.observations import build_observations
from repro.util.timeutil import YEAR, Granularity

PAPER_CHURN = {
    Granularity.DAY: 0.25,
    Granularity.WEEK: 0.30,
    Granularity.MONTH: 0.38,
    Granularity.YEAR: 0.67,
}


def test_fig3_path_churn(benchmark, sweep_world, sweep_dataset):
    observations, _ = build_observations(
        sweep_dataset, sweep_world.ip2as, anomalies=(Anomaly.DNS,)
    )
    measured = benchmark.pedantic(
        churn_from_observations,
        args=(observations,),
        kwargs={
            "granularities": (
                Granularity.DAY,
                Granularity.WEEK,
                Granularity.MONTH,
            )
        },
        rounds=1,
        iterations=1,
    )
    # Year-scale churn from ground-truth schedules over a full year.  The
    # campaign world's oracle only scheduled switches within the campaign
    # horizon, so a fresh year-horizon oracle over the same topology is
    # needed for this column.
    import dataclasses

    from repro.routing.churn import PathOracle

    pairs = list(
        {
            (observation.vantage_asn, observation.dest_asn)
            for observation in observations
        }
    )
    year_oracle = PathOracle(
        sweep_world.graph,
        dataclasses.replace(sweep_world.oracle.config, horizon=YEAR),
    )
    oracle_year = churn_from_oracle(
        year_oracle, pairs, horizon=YEAR, granularities=(Granularity.YEAR,)
    )[Granularity.YEAR]

    print()
    rows = []
    for granularity in (Granularity.DAY, Granularity.WEEK, Granularity.MONTH):
        stats = measured[granularity]
        print(
            format_histogram(
                stats.histogram(),
                title=f"Fig 3 — {granularity.value} (n={stats.count})",
            )
        )
        rows.append(
            (
                f"churn fraction per {granularity.value}",
                f"{PAPER_CHURN[granularity]:.0%}",
                f"{stats.churn_fraction:.1%}",
            )
        )
    rows.append(
        (
            "churn fraction per year (schedule ground truth)",
            f"{PAPER_CHURN[Granularity.YEAR]:.0%}",
            f"{oracle_year.churn_fraction:.1%}",
        )
    )
    print(format_comparison(rows, title="Fig 3 — paper vs measured"))

    # Shape: churn grows monotonically with window size, a sizeable
    # minority of pairs churns within a single day, and most pairs have
    # moved within a year.
    day = measured[Granularity.DAY].churn_fraction
    week = measured[Granularity.WEEK].churn_fraction
    month = measured[Granularity.MONTH].churn_fraction
    assert 0.10 < day < 0.45
    assert day <= week <= month + 1e-9
    assert oracle_year.churn_fraction > 0.5
