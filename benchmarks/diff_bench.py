"""Diff the two newest BENCH_<n>.json snapshots (the perf trajectory).

CI runs this after ``make bench-json`` and appends the markdown table to
the job summary, so a PR's benchmark movement is visible at a glance
without blocking the merge on machine-speed variance.  Usable locally
too::

    python benchmarks/diff_bench.py            # aligned text table
    python benchmarks/diff_bench.py --markdown # GitHub-flavored table

Benchmarks are matched by name; means are compared with a ±ratio column.
Missing-in-either benchmarks are listed as added/removed rather than
silently dropped.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_SNAPSHOT_PATTERN = re.compile(r"BENCH_(\d+)\.json$")


def snapshot_paths(root: Path) -> List[Path]:
    """All BENCH_<n>.json files under ``root``, numerically ordered."""
    numbered = []
    for path in root.glob("BENCH_*.json"):
        match = _SNAPSHOT_PATTERN.match(path.name)
        if match:
            numbered.append((int(match.group(1)), path))
    return [path for _, path in sorted(numbered)]


def summarize_bench(bench: Dict) -> Optional[float]:
    """One benchmark's mean seconds, from any snapshot layout.

    Raw pytest-benchmark documents, slimmed ones (``slim_bench.py``),
    and hand-reduced stat sets all normalize to the same summary here:
    ``stats.mean`` when present, else derived from ``total``/``rounds``,
    else the average of the raw ``data`` samples.  Returns None when a
    bench carries no usable timing at all — the diff then *reports* it
    as unreadable instead of silently dropping or crashing on it.
    """
    stats = bench.get("stats") or {}
    mean = stats.get("mean")
    if isinstance(mean, (int, float)):
        return float(mean)
    total, rounds = stats.get("total"), stats.get("rounds")
    if (
        isinstance(total, (int, float))
        and isinstance(rounds, int)
        and rounds > 0
    ):
        return float(total) / rounds
    data = stats.get("data")
    if isinstance(data, list) and data:
        return float(sum(data)) / len(data)
    return None


def load_means(path: Path) -> Dict[str, Optional[float]]:
    """Benchmark name → normalized mean seconds (None: no usable stats).

    Reads every snapshot layout in the repo's history — raw and slimmed
    — through one summary schema (:func:`summarize_bench`), so a
    cross-format diff (e.g. BENCH_1 raw vs BENCH_2 slimmed) compares
    every benchmark the two snapshots share.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        bench["name"]: summarize_bench(bench)
        for bench in payload.get("benchmarks", [])
        if "name" in bench
    }


def diff_rows(
    old: Dict[str, Optional[float]], new: Dict[str, Optional[float]]
) -> List[Tuple[str, str, str, str]]:
    """(benchmark, old mean, new mean, change) rows over the union."""
    rows = []
    for name in sorted(set(old) | set(new)):
        in_old, in_new = name in old, name in new
        old_mean = old.get(name)
        new_mean = new.get(name)
        if not in_old:
            rows.append((name, "-", _ms(new_mean), "added"))
        elif not in_new:
            rows.append((name, _ms(old_mean), "-", "removed"))
        elif old_mean is None or new_mean is None:
            # Present on both sides but at least one carries no usable
            # stats: say so, never silently drop the row.
            rows.append((name, _ms(old_mean), _ms(new_mean), "no stats"))
        else:
            change = (
                f"{new_mean / old_mean - 1.0:+.1%}" if old_mean else "n/a"
            )
            rows.append((name, _ms(old_mean), _ms(new_mean), change))
    return rows


def _ms(seconds: Optional[float]) -> str:
    return f"{seconds * 1000:.2f} ms" if seconds is not None else "-"


def render(rows, old_name: str, new_name: str, markdown: bool) -> str:
    headers = ("benchmark", old_name, new_name, "Δ mean")
    if not rows:
        return "(no benchmarks in either snapshot)"
    if markdown:
        lines = [
            "| " + " | ".join(headers) + " |",
            "|" + "|".join("---" for _ in headers) + "|",
        ]
        lines += ["| " + " | ".join(row) + " |" for row in rows]
        return "\n".join(lines)
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += [
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in rows
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff the two newest BENCH_<n>.json snapshots."
    )
    parser.add_argument(
        "snapshots",
        nargs="*",
        help="two snapshot files (default: the two newest in --root)",
    )
    parser.add_argument("--root", default=".", help="snapshot directory")
    parser.add_argument(
        "--markdown", action="store_true", help="GitHub-flavored table"
    )
    args = parser.parse_args(argv)
    if args.snapshots:
        if len(args.snapshots) != 2:
            print("error: pass exactly two snapshots", file=sys.stderr)
            return 2
        old_path, new_path = (Path(p) for p in args.snapshots)
    else:
        paths = snapshot_paths(Path(args.root))
        if len(paths) < 2:
            print(
                f"only {len(paths)} snapshot(s) under {args.root}; "
                "nothing to diff"
            )
            return 0
        old_path, new_path = paths[-2], paths[-1]
    rows = diff_rows(load_means(old_path), load_means(new_path))
    if args.markdown:
        print(f"### Benchmark trajectory: {old_path.name} → {new_path.name}")
        print()
    else:
        print(f"{old_path.name} → {new_path.name}")
    print(render(rows, old_path.name, new_path.name, args.markdown))
    return 0


if __name__ == "__main__":
    sys.exit(main())
