"""Shared benchmark fixtures.

Two worlds are built once per session:

- ``bench_world`` — the paper-shaped scenario (Poisson scheduling, 45
  simulated days) used by the dataset/solvability/censor/leakage benches;
- ``sweep_world`` — a smaller world with ICLab-style per-pair sweep
  scheduling (3 probes per pair per day), dense enough to *observe*
  intra-day path churn, used by the Figure-3/4 benches.

Every bench prints the paper's value next to the measured value; the
benchmark timer wraps the computation that produces the figure/table.
"""

from __future__ import annotations

import dataclasses
import gc

import pytest


@pytest.fixture(autouse=True)
def _collected_heap():
    """Collect predecessors' garbage before every bench.

    ``make bench-json`` disables GC inside timed rounds, so garbage from
    earlier benches lingers and taxes later ones unevenly — most visibly
    the sharded-drain bench, whose worker forks pay for every page still
    mapped.  Collecting up front measures each bench against the live
    fixture set only.
    """
    gc.collect()
    yield

from repro.core.pipeline import PipelineConfig
from repro.iclab.platform import PlatformConfig
from repro.scenario.presets import paper_shaped
from repro.scenario.world import build_world
from repro.util.timeutil import DAY


@pytest.fixture(scope="session")
def bench_world():
    """The paper-shaped benchmark world."""
    return build_world(paper_shaped(seed=1, duration_days=45))


@pytest.fixture(scope="session")
def bench_dataset(bench_world):
    """The paper-shaped campaign dataset."""
    return bench_world.run_campaign()


@pytest.fixture(scope="session")
def bench_result(bench_world, bench_dataset):
    """Localization output over the benchmark dataset."""
    return bench_world.pipeline(PipelineConfig()).run(bench_dataset)


@pytest.fixture(scope="session")
def sweep_world():
    """Sweep-scheduled world for churn observation (Figures 3 and 4)."""
    days = 28
    config = dataclasses.replace(
        paper_shaped(seed=2, duration_days=days),
        num_urls=12,
        num_vantage_points=30,
        platform=PlatformConfig(
            seed=2,
            start=0,
            end=days * DAY,
            schedule="sweep",
            sweeps_per_pair_per_day=3.0,
        ),
    )
    return build_world(config)


@pytest.fixture(scope="session")
def sweep_dataset(sweep_world):
    """The sweep campaign dataset."""
    return sweep_world.run_campaign()
