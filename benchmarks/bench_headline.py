"""Headline results — the paper's abstract in one bench.

"Our approach exploits BGP churn to narrow down the set of potential
censoring ASes by over 95%.  We exactly identify 65 censoring ASes and
find that the anomalies introduced by 24 of the 65 censoring ASes have an
impact on users located in regions outside the jurisdiction of the
censoring AS."

This bench times the *entire* localization pipeline and prints every
headline number next to its measured analog.
"""

from repro.analysis.solvability import overall_unique_fraction
from repro.analysis.tables import format_comparison
from repro.core.pipeline import PipelineConfig


def test_headline_full_pipeline(benchmark, bench_world, bench_dataset):
    pipeline = bench_world.pipeline(PipelineConfig())
    result = benchmark.pedantic(
        pipeline.run, args=(bench_dataset,), rounds=1, iterations=1
    )

    identified = result.identified_censor_asns
    deployment = bench_world.deployment
    true_positive = [asn for asn in identified if deployment.is_censor(asn)]
    precision = len(true_positive) / len(identified) if identified else 0.0
    supported = result.censor_report.well_supported_asns(min_problems=4)
    supported_true = [asn for asn in supported if deployment.is_censor(asn)]
    supported_precision = (
        len(supported_true) / len(supported) if supported else 0.0
    )
    countries = result.censor_report.countries()

    print()
    print(
        format_comparison(
            [
                ("candidate-set reduction (mean)", ">95%", f"{result.reduction_stats.mean:.1%}"),
                ("exactly identified censoring ASes", 65, len(identified)),
                ("countries with identified censors", 30, len(countries)),
                (
                    "censors leaking to other ASes",
                    32,
                    len(result.leakage_report.leaking_censors),
                ),
                (
                    "censors leaking across borders",
                    24,
                    len(result.leakage_report.cross_border_censors),
                ),
                (
                    "unique-solution CNFs (all)",
                    "~92%",
                    f"{overall_unique_fraction(result.solutions, censored_only=False):.1%}",
                ),
                ("identification precision (raw)", "n/a", f"{precision:.1%}"),
                (
                    "identification precision (support >= 4 problems)",
                    "n/a",
                    f"{supported_precision:.1%}",
                ),
                (
                    "true censors deployed (ground truth)",
                    "unknown to the paper",
                    len(deployment.censor_asns),
                ),
            ],
            title="Headline — paper vs measured",
        )
    )

    assert result.reduction_stats.mean > 0.7
    assert len(identified) >= 5
    # Raw identifications include noise blames (the paper cannot measure
    # these); requiring recurring support recovers high precision.
    assert precision > 0.3
    assert supported_precision > 0.55
    assert len(result.leakage_report.leaking_censors) >= 1
