"""Figure 5 — the flow of censorship between countries.

The paper's world map shows which countries contain censoring ASes and
where their censorship leaks; its qualitative reading: the dominant censor
country (China) leaks globally, while European and Middle-Eastern censors
leak mostly within their own region.  The bench prints the flow matrix as
(censor country → victim country, weight) rows and checks the regional-
locality reading with the dominant country excluded.
"""

from repro.analysis.reports import flow_matrix_rows, regional_leakage_fraction
from repro.analysis.tables import format_comparison, format_table


def test_fig5_censorship_flow(benchmark, bench_world, bench_result):
    leakage = bench_result.leakage_report
    rows = benchmark.pedantic(
        flow_matrix_rows, args=(leakage, 15), rounds=3, iterations=1
    )
    print()
    print(
        format_table(
            ["Censor country", "Victim country", "Leaked ASes"],
            rows,
            title="Fig 5 — censorship flow (measured)",
        )
    )
    all_regional = regional_leakage_fraction(leakage)
    non_dominant = regional_leakage_fraction(leakage, exclude_countries=("CN",))
    print(
        format_comparison(
            [
                (
                    "regional fraction of leak edges (all)",
                    "low (China leaks globally)",
                    f"{all_regional:.1%}" if all_regional is not None else "n/a",
                ),
                (
                    "regional fraction (excluding CN-analog)",
                    "majority regional",
                    f"{non_dominant:.1%}" if non_dominant is not None else "n/a",
                ),
            ],
            title="Fig 5 — paper vs measured",
        )
    )

    assert rows, "expected at least one cross-border flow edge"
    # Shape: outside the dominant censor country, leakage skews regional
    # relative to the overall mix.
    if all_regional is not None and non_dominant is not None:
        assert non_dominant >= all_regional - 0.25
