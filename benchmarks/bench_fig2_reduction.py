"""Figure 2 — CDF of candidate-set reduction for multi-solution CNFs.

Even when a CNF has 2+ solutions, ASes that are False in every solution are
definite non-censors.  The paper reports a mean reduction of 95.2%, a
median near 90%, and ~20% of multi-solution CNFs where nothing could be
eliminated.
"""

from repro.analysis.tables import format_cdf, format_comparison
from repro.core.reduction import reduction_of

PAPER_MEAN_REDUCTION = 0.952
PAPER_MEDIAN_REDUCTION = 0.90
PAPER_NO_ELIMINATION = 0.20


def test_fig2_candidate_reduction_cdf(benchmark, bench_result):
    stats = benchmark.pedantic(
        reduction_of, args=(bench_result.solutions,), rounds=3, iterations=1
    )
    print()
    print(
        format_cdf(
            stats.cdf_points(bins=10),
            title=f"Fig 2 — reduction CDF over {stats.count} multi-solution CNFs",
            x_label="reduction%",
        )
    )
    print(
        format_comparison(
            [
                ("mean reduction", f"{PAPER_MEAN_REDUCTION:.1%}", f"{stats.mean:.1%}"),
                ("median reduction", f"~{PAPER_MEDIAN_REDUCTION:.0%}", f"{stats.median:.1%}"),
                (
                    "no-elimination fraction",
                    f"{PAPER_NO_ELIMINATION:.0%}",
                    f"{stats.no_elimination_fraction:.1%}",
                ),
            ],
            title="Fig 2 — paper vs measured",
        )
    )
    # Shape: reduction is strong — the bulk of observed ASes are cleared.
    assert stats.count > 10
    assert stats.mean > 0.7
    assert stats.percentile(75) > 0.8
