"""Slim pytest-benchmark JSON snapshots for committing to the repo.

pytest-benchmark's ``--benchmark-json`` output embeds every raw
per-round timing sample (``stats.data``) — ~95% of a snapshot's bytes
and useless for the cross-PR trajectory, which only compares summary
statistics.  This tool strips the sample arrays in place (or to a new
file), keeping each benchmark's name, group, params, extra_info, and
the full summary ``stats`` — everything ``diff_bench.py`` and the CI
job summary read.  A ``slimmed`` marker records the transformation;
``diff_bench.py`` reads slimmed and raw snapshots interchangeably.

Usage::

    python benchmarks/slim_bench.py BENCH_2.json            # in place
    python benchmarks/slim_bench.py raw.json --out slim.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict

# Per-benchmark keys worth keeping: identity, parameters, options, the
# summary statistics, and any extra_info the bench recorded.
_BENCH_KEYS = (
    "group",
    "name",
    "fullname",
    "params",
    "param",
    "extra_info",
    "options",
    "stats",
)


def slim_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """A copy of one pytest-benchmark document without raw samples."""
    slimmed = {
        key: payload[key]
        for key in ("machine_info", "commit_info", "datetime", "version")
        if key in payload
    }
    slimmed["slimmed"] = True
    benches = []
    for bench in payload.get("benchmarks", []):
        entry = {
            key: bench[key] for key in _BENCH_KEYS if key in bench
        }
        stats = dict(entry.get("stats", {}))
        stats.pop("data", None)
        entry["stats"] = stats
        benches.append(entry)
    slimmed["benchmarks"] = benches
    return slimmed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Strip raw per-round samples from a benchmark JSON."
    )
    parser.add_argument("snapshot", help="pytest-benchmark JSON file")
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: rewrite the input in place)",
    )
    args = parser.parse_args(argv)
    source = Path(args.snapshot)
    with open(source, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    before = source.stat().st_size
    slimmed = slim_payload(payload)
    target = Path(args.out) if args.out else source
    data = json.dumps(slimmed, indent=1, sort_keys=True) + "\n"
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(data)
    after = target.stat().st_size
    print(
        f"{source.name}: {before / 1024:.0f} KiB -> "
        f"{after / 1024:.0f} KiB "
        f"({len(slimmed['benchmarks'])} benchmarks)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
