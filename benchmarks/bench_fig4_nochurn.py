"""Figure 4 — CNF solvability when path churn is removed.

The paper's ablation: keep, per (vantage, URL) pair, only the measurements
that used the *first observed distinct path*, then rebuild and solve every
CNF.  Without churn-created path diversity, ~80% of (censored) CNFs return
five or more solutions, versus <1% with churn — the headline evidence that
churn substitutes for strategically placed monitors.
"""

from repro.analysis.solvability import SolvabilityHistogram
from repro.analysis.tables import format_comparison, format_histogram
from repro.core.pipeline import PipelineConfig
from repro.util.timeutil import Granularity

PAPER_NOCHURN_5PLUS = 0.80
PAPER_CHURN_5PLUS = 0.01


def _censored_histogram(result, label):
    histogram = SolvabilityHistogram(label=label)
    for solution in result.solutions:
        if solution.had_anomaly:
            histogram.add(solution)
    return histogram


def test_fig4_solvability_without_churn(benchmark, sweep_world, sweep_dataset):
    pipeline = sweep_world.pipeline(
        PipelineConfig(
            granularities=(Granularity.DAY, Granularity.WEEK, Granularity.MONTH),
            solution_cap=8,
        )
    )
    without_churn = benchmark.pedantic(
        pipeline.run_without_churn, args=(sweep_dataset,), rounds=1, iterations=1
    )
    with_churn = pipeline.run(sweep_dataset)

    ablated = _censored_histogram(without_churn, "no churn")
    baseline = _censored_histogram(with_churn, "with churn")

    print()
    print(format_histogram(ablated.fine(), title=f"Fig 4 — no churn (n={ablated.total})"))
    print(format_histogram(baseline.fine(), title=f"Fig 4 — with churn (n={baseline.total})"))
    print(
        format_comparison(
            [
                (
                    "censored CNFs with 5+ solutions (no churn)",
                    f"~{PAPER_NOCHURN_5PLUS:.0%}",
                    f"{ablated.fraction('5+'):.1%}",
                ),
                (
                    "censored CNFs with 5+ solutions (with churn)",
                    f"<{PAPER_CHURN_5PLUS:.0%}",
                    f"{baseline.fraction('5+'):.1%}",
                ),
                (
                    "unique fraction (no churn)",
                    "low",
                    f"{ablated.unique_fraction:.1%}",
                ),
                (
                    "unique fraction (with churn)",
                    "high",
                    f"{baseline.unique_fraction:.1%}",
                ),
            ],
            title="Fig 4 — paper vs measured",
        )
    )

    # Shape: removing churn collapses solvability.
    assert ablated.fraction("5+") > baseline.fraction("5+")
    assert ablated.unique_fraction < baseline.unique_fraction
    assert ablated.fraction("5+") > 0.2
