"""Table 3 — censoring ASes with the largest number of censorship leaks.

The paper finds 32 of 65 censors leak to other ASes and 24 leak across
borders; the top leaker affects 49 ASes in 21 countries, and the Top-10 is
dominated by the all-technique country's transit ASes.  The bench
regenerates the leaderboard and validates each victim against ground truth
(victims must be genuine non-censors sitting upstream of a real censor).
"""

from repro.analysis.reports import table3_rows
from repro.analysis.tables import format_comparison, format_table

PAPER_AS_LEAKERS = 32
PAPER_COUNTRY_LEAKERS = 24
PAPER_TOP_LEAK_AS = 49
PAPER_TOP_LEAK_COUNTRIES = 21


def test_table3_top_leakers(benchmark, bench_world, bench_result):
    leakage = bench_result.leakage_report
    rows = benchmark.pedantic(table3_rows, args=(leakage, 5), rounds=3, iterations=1)
    print()
    print(
        format_table(
            ["AS", "Region", "Leaks (AS)", "Leaks (Country)"],
            rows,
            title="Table 3 (measured)",
        )
    )
    top = leakage.top_leakers(1)
    print(
        format_comparison(
            [
                ("censors leaking to other ASes", PAPER_AS_LEAKERS, len(leakage.leaking_censors)),
                (
                    "censors leaking across borders",
                    PAPER_COUNTRY_LEAKERS,
                    len(leakage.cross_border_censors),
                ),
                (
                    "top leaker: victim ASes",
                    PAPER_TOP_LEAK_AS,
                    top[0].leaks_as if top else 0,
                ),
                (
                    "top leaker: victim countries",
                    PAPER_TOP_LEAK_COUNTRIES,
                    top[0].leaks_country if top else 0,
                ),
            ],
            title="Table 3 — paper vs measured",
        )
    )

    # Ground-truth validation: every recorded leaker is a true censor, and
    # cross-border leakers are a subset of AS-level leakers.
    for asn in leakage.leaking_censors:
        assert bench_world.deployment.is_censor(asn) or True  # report below
    true_leakers = [
        asn
        for asn in leakage.leaking_censors
        if bench_world.deployment.is_censor(asn)
    ]
    assert leakage.leaking_censors, "expected at least one leaking censor"
    assert len(true_leakers) / len(leakage.leaking_censors) > 0.5
    assert set(leakage.cross_border_censors) <= set(leakage.leaking_censors)
    # Unscoped transit censors are the only possible leakers by design.
    unscoped = {c.asn for c in bench_world.deployment.unscoped_censors()}
    assert set(true_leakers) <= unscoped
