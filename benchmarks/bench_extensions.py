"""Future-work extension benches (paper §5).

Not paper artefacts — these exercise the two follow-ups the paper's
conclusion commits to, demonstrating that the tomography machinery carries
over to other measurement databases unchanged:

- throttling localization from M-Lab-analog throughput data;
- localization of ASes blocking Tor bridges.
"""

from repro.analysis.tables import format_table
from repro.extensions.throttling import (
    ThrottlingCampaignConfig,
    localize_throttlers,
)
from repro.extensions.tor_bridges import (
    BridgeCampaignConfig,
    localize_bridge_blockers,
)
from repro.scenario import build_world, small
from repro.util.timeutil import DAY


def test_extension_throttling_localization(benchmark):
    world = build_world(small(seed=11))
    result = benchmark.pedantic(
        localize_throttlers,
        args=(world,),
        kwargs={
            "config": ThrottlingCampaignConfig(seed=11, end=10 * DAY, num_servers=5)
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ("true throttlers deployed", len(result.true_throttlers)),
                ("exactly identified", len(result.identified)),
                ("remaining potential", len(result.potential)),
                ("problems solved", result.problems_solved),
                ("unsat problems", result.unsat_problems),
                ("precision", f"{result.precision:.1%}" if result.identified else "n/a"),
            ],
            title="Extension — throttling localization (M-Lab analog)",
        )
    )
    assert result.problems_solved > 0
    for asn in result.identified:
        assert asn in result.true_throttlers


def test_extension_bridge_blocking_localization(benchmark):
    world = build_world(small(seed=12))
    result = benchmark.pedantic(
        localize_bridge_blockers,
        args=(world,),
        kwargs={
            "config": BridgeCampaignConfig(
                seed=12,
                end=12 * DAY,
                num_bridges=6,
                blocker_fraction=0.8,
                mean_discovery_days=2.0,
            )
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        format_table(
            ["quantity", "value"],
            [
                ("true bridge hunters", len(result.true_blockers)),
                ("exactly identified", len(result.identified)),
                ("remaining potential", len(result.potential)),
                ("problems solved", result.problems_solved),
                ("unsat problems", result.unsat_problems),
                ("precision", f"{result.precision:.1%}" if result.identified else "n/a"),
            ],
            title="Extension — Tor bridge blocking localization",
        )
    )
    assert result.problems_solved > 0
    for asn in result.identified:
        assert asn in result.true_blockers
