"""Table 2 — regions with the most censoring ASes.

The paper identifies 65 censoring ASes across 30 countries; the top region
hosts six of them, the all-technique countries (China, Cyprus) exhibit
every measured anomaly type, and most other censors are narrow.  The bench
regenerates the per-country rollup and validates identifications against
the deployment ground truth (a check the paper could not perform).
"""

from repro.analysis.tables import format_comparison, format_table
from repro.analysis.reports import table2_rows
from repro.core.censors import identify_censors

PAPER_CENSOR_ASES = 65
PAPER_CENSOR_COUNTRIES = 30
PAPER_TOP_COUNTRY_CENSORS = 6


def test_table2_censoring_regions(benchmark, bench_world, bench_result):
    report = benchmark.pedantic(
        identify_censors,
        args=(bench_result.solutions,),
        kwargs={"country_by_asn": bench_world.country_by_asn},
        rounds=3,
        iterations=1,
    )
    rows = table2_rows(report, limit=5)
    print()
    print(
        format_table(
            ["Region", "Censoring ASes", "Anomalies"],
            rows,
            title="Table 2 (measured)",
        )
    )

    identified = report.censor_asns
    true_positive = [
        asn for asn in identified if bench_world.deployment.is_censor(asn)
    ]
    precision = len(true_positive) / len(identified) if identified else 0.0
    recall = len(true_positive) / max(1, len(bench_world.deployment.censor_asns))
    supported = report.well_supported_asns(min_problems=4)
    supported_true = [
        asn for asn in supported if bench_world.deployment.is_censor(asn)
    ]
    supported_precision = (
        len(supported_true) / len(supported) if supported else 0.0
    )
    print(
        format_comparison(
            [
                ("censoring ASes identified", PAPER_CENSOR_ASES, len(identified)),
                ("countries with censors", PAPER_CENSOR_COUNTRIES, len(report.countries())),
                (
                    "top-country censor count",
                    PAPER_TOP_COUNTRY_CENSORS,
                    len(next(iter(report.by_country().values()), [])),
                ),
                ("precision vs ground truth (raw)", "n/a (no ground truth)", f"{precision:.1%}"),
                (
                    "precision (support >= 4 problems)",
                    "n/a (no ground truth)",
                    f"{supported_precision:.1%}",
                ),
                ("recall vs ground truth", "n/a (no ground truth)", f"{recall:.1%}"),
            ],
            title="Table 2 — paper vs measured",
        )
    )

    # Shape: a meaningful number of censors across several countries, and
    # identifications are dominated by true censors.
    assert len(identified) >= 5
    assert len(report.countries()) >= 3
    assert precision > 0.3
    assert supported_precision > 0.55
