"""Sweep-runner scaling: parallel workers vs. the serial fallback.

Times the same 8-job grid (4 seeds × with/without churn on the tiny
preset) executed serially and over 4 worker processes, and prints the
wall-clock speedup plus the cache-hit fast path.  World construction and
the pipeline dominate each job, so the grid parallelizes near-linearly
until the per-job cost is dwarfed by process startup.
"""

import time

from repro.runner import ResultStore, SweepSpec, run_sweep

GRID = SweepSpec(
    name="bench-sweep",
    preset="tiny",
    master_seed=3,
    num_seeds=4,
    churn_modes=("with", "without"),
    duration_days=5,
)


def test_parallel_sweep_speedup(benchmark, tmp_path):
    jobs = GRID.expand()
    assert len(jobs) == 8

    serial_started = time.perf_counter()
    serial = run_sweep(jobs, store=None, workers=1)
    serial_elapsed = time.perf_counter() - serial_started
    assert serial.failures == 0

    store = ResultStore(tmp_path)
    parallel_started = time.perf_counter()
    parallel = benchmark.pedantic(
        run_sweep,
        args=(jobs,),
        kwargs={"store": store, "workers": 4},
        rounds=1,
        iterations=1,
    )
    parallel_elapsed = time.perf_counter() - parallel_started
    assert parallel.failures == 0

    cached_started = time.perf_counter()
    cached = run_sweep(jobs, store=store, workers=4)
    cached_elapsed = time.perf_counter() - cached_started
    assert cached.cache_hits == len(jobs)

    print()
    print(f"8-job grid   serial: {serial_elapsed:6.2f}s")
    print(
        f"8-job grid  4 workers: {parallel_elapsed:6.2f}s "
        f"({serial_elapsed / parallel_elapsed:.1f}x)"
    )
    print(f"8-job grid  cache hit: {cached_elapsed:6.3f}s")
