"""Figures 1a / 1b — number of solutions per CNF.

Figure 1a splits by CNF granularity (day / week / month): solvability
degrades as windows coarsen, because policy changes and noisy measurements
accumulate.  Figure 1b splits by anomaly type: RST is by far the noisiest
(the paper reports ~30% of RST CNFs unsolvable) because organic resets are
indistinguishable from injected ones.

Shape checks: day-granularity CNFs have the highest unique fraction; RST
has the highest UNSAT fraction among anomalies.
"""

from repro.analysis.solvability import (
    overall_unique_fraction,
    overall_unsat_fraction,
    solvability_by_anomaly,
    solvability_by_granularity,
)
from repro.analysis.tables import format_comparison, format_histogram
from repro.anomaly import Anomaly
from repro.util.timeutil import Granularity

PAPER_OVERALL_UNIQUE = 0.92
PAPER_OVERALL_UNSAT = 0.06
PAPER_RST_UNSAT = 0.30


def test_fig1a_solvability_by_granularity(benchmark, bench_result):
    by_granularity = benchmark.pedantic(
        solvability_by_granularity,
        args=(bench_result.solutions,),
        kwargs={"censored_only": False},
        rounds=3,
        iterations=1,
    )
    print()
    for granularity, histogram in by_granularity.items():
        print(
            format_histogram(
                histogram.coarse(),
                title=f"Fig 1a — {granularity.value} (n={histogram.total})",
            )
        )
    unique_overall = overall_unique_fraction(
        bench_result.solutions, censored_only=False
    )
    unsat_overall = overall_unsat_fraction(
        bench_result.solutions, censored_only=False
    )
    print(
        format_comparison(
            [
                ("overall unique fraction", f"{PAPER_OVERALL_UNIQUE:.0%}", f"{unique_overall:.1%}"),
                ("overall unsat fraction", f"<{PAPER_OVERALL_UNSAT:.0%}", f"{unsat_overall:.1%}"),
            ],
            title="Fig 1 headline — paper vs measured",
        )
    )
    # Shape: finer windows solve better; the overall CNF population is
    # dominated by unique solutions, and UNSAT stays a small minority.
    day = by_granularity[Granularity.DAY]
    month = by_granularity[Granularity.MONTH]
    assert day.unique_fraction >= month.unique_fraction
    assert unique_overall > 0.6
    assert unsat_overall < 0.10


def test_fig1b_solvability_by_anomaly(benchmark, bench_result):
    by_anomaly = benchmark.pedantic(
        solvability_by_anomaly,
        args=(bench_result.solutions,),
        kwargs={"censored_only": True},
        rounds=3,
        iterations=1,
    )
    print()
    for anomaly, histogram in by_anomaly.items():
        print(
            format_histogram(
                histogram.coarse(),
                title=f"Fig 1b — {anomaly.value} (n={histogram.total})",
            )
        )
    rst_unsat = by_anomaly[Anomaly.RST].unsat_fraction
    others_unsat = [
        by_anomaly[a].unsat_fraction
        for a in Anomaly.all()
        if a is not Anomaly.RST and by_anomaly[a].total
    ]
    print(
        format_comparison(
            [("RST unsat fraction", f"~{PAPER_RST_UNSAT:.0%}", f"{rst_unsat:.1%}")],
            title="Fig 1b — paper vs measured",
        )
    )
    # Shape: RST is the least solvable anomaly type (allow statistical
    # ties: UNSAT fractions are ratios of modest counts).
    assert rst_unsat >= max(others_unsat) - 0.02
