"""Table 1 — ICLab dataset characteristics.

Regenerates the paper's Table 1 (measurement counts and per-anomaly
fractions) from the synthetic campaign.  Absolute counts differ (the
synthetic world is ~1/20 scale and censoring countries are proportionally
denser), but the structural facts the table conveys must hold: anomalies
are rare relative to measurements, TTL/RST/SEQ dominate over DNS/blockpage,
and URLs resolve into fewer destination ASes than there are URLs.
"""

from repro.analysis.reports import table1_rows
from repro.analysis.tables import format_comparison, format_table
from repro.anomaly import Anomaly

PAPER_ROWS = {
    "Unique URLs": 774,
    "AS Vantage Points": 539,
    "Destination ASes": 620,
    "Countries": 219,
    "Measurements": 4_900_000,
}
PAPER_ANOMALY_FRACTIONS = {
    Anomaly.DNS: 0.0005,
    Anomaly.SEQ: 0.0020,
    Anomaly.TTL: 0.0035,
    Anomaly.RST: 0.0017,
    Anomaly.BLOCK: 0.0003,
}


def test_table1_dataset_characteristics(benchmark, bench_dataset):
    stats = benchmark.pedantic(bench_dataset.stats, rounds=3, iterations=1)

    print()
    print(format_table(["quantity", "value"], table1_rows(stats), title="Table 1 (measured)"))
    comparison = [
        ("Unique URLs", PAPER_ROWS["Unique URLs"], stats.unique_urls),
        ("AS Vantage Points", PAPER_ROWS["AS Vantage Points"], stats.vantage_ases),
        ("Destination ASes", PAPER_ROWS["Destination ASes"], stats.dest_ases),
        ("Countries", PAPER_ROWS["Countries"], stats.countries),
        ("Measurements", f"{PAPER_ROWS['Measurements']:,}", f"{stats.measurements:,}"),
    ]
    for anomaly, paper_fraction in PAPER_ANOMALY_FRACTIONS.items():
        comparison.append(
            (
                f"{anomaly.value} anomaly fraction",
                f"{paper_fraction:.2%}",
                f"{stats.anomaly_fraction(anomaly):.2%}",
            )
        )
    print(format_comparison(comparison, title="Table 1 — paper vs measured"))

    # Shape assertions: the table's structural claims.
    assert stats.measurements > 10_000
    assert stats.dest_ases <= stats.unique_urls  # URLs share hosts
    total_anomaly_fraction = stats.total_anomalies / stats.measurements
    assert total_anomaly_fraction < 0.25  # anomalies are the rare case
    assert stats.anomaly_counts[Anomaly.TTL] >= stats.anomaly_counts[Anomaly.DNS]
