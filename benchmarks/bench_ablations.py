"""Ablation benches for the design choices DESIGN.md calls out.

- **Granularity sensitivity** — how the day/week/month split trades
  solvability against coverage (the paper's motivation for splitting).
- **Solver strategy** — full model enumeration vs. backbone probing for
  the non-censor elimination rule; backbone is exact at any cap.
- **URL splitting** — merging all URLs into one CNF (no per-URL split)
  destroys solvability, validating §3.1's design decision.
"""

from collections import defaultdict

from repro.analysis.tables import format_table
from repro.anomaly import Anomaly
from repro.core.observations import Observation, build_observations
from repro.core.problem import SolutionStatus, TomographyProblem
from repro.core.splitting import ProblemKey, split_observations
from repro.sat.backbone import backbone
from repro.sat.enumerate import enumerate_models, models_agreeing_false
from repro.util.timeutil import Granularity


def test_ablation_granularity_sensitivity(benchmark, bench_world, bench_dataset):
    """Coarser windows lose solvability on censored CNFs."""
    observations, _ = build_observations(bench_dataset, bench_world.ip2as)

    def solve_all():
        groups = split_observations(observations)
        outcome = defaultdict(lambda: [0, 0, 0])  # unsat, unique, multiple
        for key, group in groups.items():
            if not any(o.detected for o in group):
                continue
            solution = TomographyProblem(key, group, solution_cap=8).solve()
            index = {
                SolutionStatus.UNSATISFIABLE: 0,
                SolutionStatus.UNIQUE: 1,
                SolutionStatus.MULTIPLE: 2,
            }[solution.status]
            outcome[key.granularity][index] += 1
        return outcome

    outcome = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    print()
    rows = []
    for granularity in Granularity.all():
        if granularity not in outcome:
            continue
        unsat, unique, multiple = outcome[granularity]
        total = unsat + unique + multiple
        rows.append(
            (
                granularity.value,
                total,
                f"{unsat / total:.1%}",
                f"{unique / total:.1%}",
                f"{multiple / total:.1%}",
            )
        )
    print(
        format_table(
            ["granularity", "censored CNFs", "unsat", "unique", "multiple"],
            rows,
            title="Ablation — granularity sensitivity (censored CNFs)",
        )
    )
    # UNSAT share rises with window size (policy churn + noise accumulate).
    day_unsat = outcome[Granularity.DAY][0] / max(1, sum(outcome[Granularity.DAY]))
    year_like = (
        Granularity.YEAR if Granularity.YEAR in outcome else Granularity.MONTH
    )
    coarse_unsat = outcome[year_like][0] / max(1, sum(outcome[year_like]))
    assert coarse_unsat >= day_unsat - 1e-9


def test_ablation_backbone_vs_enumeration(benchmark, bench_world, bench_dataset):
    """The paper's elimination rule, two ways: backbone probing must agree
    with capped enumeration wherever the cap was not hit, and is the one
    that stays exact beyond the cap."""
    observations, _ = build_observations(bench_dataset, bench_world.ip2as)
    groups = split_observations(observations, granularities=(Granularity.WEEK,))
    censored = [
        (key, group)
        for key, group in groups.items()
        if any(o.detected for o in group)
    ]

    def compare():
        agreements = disagreements = capped = 0
        for key, group in censored[:200]:
            problem = TomographyProblem(key, group)
            cnf, builder = problem.build_cnf()
            enumeration = enumerate_models(cnf, cap=16)
            if enumeration.unsatisfiable:
                continue
            bb = backbone(cnf)
            enum_false = models_agreeing_false(enumeration.models)
            if enumeration.capped:
                capped += 1
                # backbone-false is always a subset of capped enum-false
                if bb.always_false <= enum_false:
                    agreements += 1
                else:
                    disagreements += 1
            else:
                if bb.always_false == enum_false:
                    agreements += 1
                else:
                    disagreements += 1
        return agreements, disagreements, capped

    agreements, disagreements, capped = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["strategy comparison", "count"],
            [
                ("agreements", agreements),
                ("disagreements", disagreements),
                ("capped enumerations", capped),
            ],
            title="Ablation — backbone vs enumeration",
        )
    )
    assert disagreements == 0
    assert agreements > 0


def test_ablation_no_url_splitting(benchmark, bench_world, bench_dataset):
    """Merging every URL into one CNF (§3.1 ablation) breaks solvability:
    different URLs have different censorship status, so clauses contradict."""
    observations, _ = build_observations(
        bench_dataset, bench_world.ip2as, anomalies=(Anomaly.TTL,)
    )

    def solve_merged():
        merged = [
            Observation(
                url="merged://all",
                anomaly=o.anomaly,
                detected=o.detected,
                as_path=o.as_path,
                timestamp=o.timestamp,
                measurement_id=o.measurement_id,
            )
            for o in observations
        ]
        groups = split_observations(merged, granularities=(Granularity.DAY,))
        statuses = defaultdict(int)
        for key, group in groups.items():
            if not any(o.detected for o in group):
                continue
            solution = TomographyProblem(key, group, solution_cap=8).solve()
            statuses[solution.status] += 1
        return statuses

    merged_statuses = benchmark.pedantic(solve_merged, rounds=1, iterations=1)

    groups = split_observations(observations, granularities=(Granularity.DAY,))
    split_statuses = defaultdict(int)
    for key, group in groups.items():
        if not any(o.detected for o in group):
            continue
        split_statuses[TomographyProblem(key, group, solution_cap=8).solve().status] += 1

    def unsat_fraction(statuses):
        total = sum(statuses.values())
        return statuses[SolutionStatus.UNSATISFIABLE] / total if total else 0.0

    print()
    print(
        format_table(
            ["variant", "unsat fraction", "censored CNFs"],
            [
                ("per-URL CNFs (paper)", f"{unsat_fraction(split_statuses):.1%}", sum(split_statuses.values())),
                ("merged CNFs (ablation)", f"{unsat_fraction(merged_statuses):.1%}", sum(merged_statuses.values())),
            ],
            title="Ablation — URL-based splitting",
        )
    )
    assert unsat_fraction(merged_statuses) > unsat_fraction(split_statuses)
