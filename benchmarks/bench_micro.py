"""Micro-benchmarks for the performance-critical substrates.

Not paper artefacts — these guard the components whose cost dominates the
harness: the SAT solver, route computation, session simulation, and
traceroute-to-AS-path conversion.
"""

import itertools
import json
import threading

import pytest

from repro.api import ExecutionPolicy, SessionConfig
from repro.api.backends import BackendContext, ShardedBackend
from repro.core.aspath import convert_measurement
from repro.core.observations import build_observations
from repro.core.pipeline import PipelineConfig
from repro.routing.bgp import RouteComputer
from repro.sat.cnf import CNF, Clause
from repro.sat.solver import Solver
from repro.stream import StreamingLocalizer
from repro.stream.checkpoint import engine_state, restore_engine
from repro.util.rng import DeterministicRNG


def test_micro_sat_random_3sat(benchmark):
    """Solve a satisfiable-ish random 3-SAT instance at ratio 4.0."""
    rng = DeterministicRNG(7, "bench-3sat")
    num_vars = 60
    clauses = []
    for _ in range(240):
        variables = rng.sample(range(1, num_vars + 1), 3)
        clauses.append(
            Clause([v if rng.random() < 0.5 else -v for v in variables])
        )
    cnf = CNF(num_vars, clauses)

    def solve():
        return Solver(cnf).solve()

    result = benchmark(solve)
    assert result.satisfiable in (True, False)


def test_micro_route_computation(benchmark, bench_world):
    """One full per-destination routing table on the benchmark topology.

    Salts cycle over a fixed pool so the per-salt tie-break rank tables
    amortize (as they do in a real campaign) and the benchmark measures
    the three-phase propagation itself, not rank precomputation.
    """
    computer = RouteComputer(bench_world.graph, cache_size=0)
    destination = bench_world.test_list.urls[0].dest_asn
    salt_cycle = itertools.cycle(range(64))

    def compute():
        return computer.routing_table(destination, salt=next(salt_cycle))

    table = benchmark(compute)
    assert len(table) > 0


def test_micro_session_simulation(benchmark, bench_world):
    """One end-to-end censorship test (DNS + HTTP + 3 traceroutes)."""
    platform = bench_world.platform
    vantage = bench_world.vantage_points[0]
    test_url = bench_world.test_list.urls[0]
    timestamps = iter(range(1000, 10**9, 37))

    def run():
        return platform.run_test(vantage, test_url, next(timestamps))

    measurement = benchmark(run)
    assert measurement is not None


def test_micro_aspath_conversion(benchmark, bench_world, bench_dataset):
    """Traceroute-to-AS-path conversion over one measurement."""
    measurement = bench_dataset[0]

    def convert():
        return convert_measurement(measurement, bench_world.ip2as)

    conversion = benchmark(convert)
    assert conversion is not None


def test_micro_pipeline_solve(benchmark, bench_world, bench_dataset):
    """The tomography stage alone: observations → solved problems.

    Exercises the structural CNF dedup and propagation fast path over the
    paper-shaped problem mix (thousands of problems, hundreds of unique
    formulas); the perf-trajectory guard for the solver cache.
    """
    pipeline = bench_world.pipeline(PipelineConfig())
    observations, discard_stats = build_observations(
        bench_dataset, bench_world.ip2as
    )

    def solve():
        return pipeline.run_from_observations(observations, discard_stats)

    result = benchmark.pedantic(solve, rounds=3, iterations=1)
    stats = pipeline.last_solve_stats
    assert stats is not None and stats.unique_cnfs < stats.problems
    assert len(result.solutions) == stats.problems


# The crossover study: the sharded drain is benchmarked against
# single-threaded ingest on the same slices.  6000 was the protocol-v0
# break-even point; 2000 pins that the batched wire protocol moved the
# crossover to (at latest) a third of that.
STREAM_SLICES = (2000, 6000)


@pytest.mark.parametrize("slice_size", STREAM_SLICES)
def test_micro_stream_ingest(benchmark, bench_world, bench_dataset,
                             slice_size):
    """Streaming ingestion throughput and verdict latency.

    Drains a slice of the paper-shaped campaign through the online engine
    with a (no-op) subscriber attached, so every ingested observation pays
    the full incremental-verdict path: ledger append, resumable unit
    propagation, snapshot, and delta detection.  ``extra_info`` records
    events/sec and mean per-observation latency — the headline numbers of
    the streaming subsystem's perf trajectory.
    """
    observations, _ = build_observations(
        bench_dataset, bench_world.ip2as
    )
    slice_size = min(len(observations), slice_size)
    feed = observations[:slice_size]
    stats_holder = {}

    def drain():
        engine = StreamingLocalizer(
            bench_world.ip2as,
            bench_world.country_by_asn,
            config=PipelineConfig(),
        )
        engine.subscribe(lambda event: None)
        for observation in feed:
            engine.ingest_observation(observation)
        result = engine.drain()
        stats_holder["stats"] = engine.stats
        return result

    result = benchmark.pedantic(drain, rounds=3, iterations=1)
    stats = stats_holder["stats"]
    assert stats.observations == slice_size
    assert len(result.solutions) == stats.problems_closed
    assert stats.propagation_decided > stats.fallback_solves
    mean_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["observations"] = slice_size
    benchmark.extra_info["events_per_sec"] = round(
        slice_size / mean_seconds, 1
    )
    benchmark.extra_info["verdict_latency_us"] = round(
        mean_seconds / slice_size * 1e6, 2
    )
    benchmark.extra_info["verdict_events"] = stats.events_emitted


@pytest.mark.parametrize("slice_size", STREAM_SLICES)
def test_micro_sharded_drain(benchmark, bench_world, bench_dataset,
                             slice_size):
    """Sharded-backend drain: route → 4 worker processes → merge.

    The same observation slice ``test_micro_stream_ingest`` drains
    single-threaded goes through :class:`repro.api.ShardedBackend`
    instead, measuring the full distributed path — worker forks,
    per-chunk batched-wire IPC, parallel incremental solving, and the
    ordered merge — end to end.  The one-time equality check against the
    inline engine guards the merge itself.
    """
    observations, _ = build_observations(bench_dataset, bench_world.ip2as)
    slice_size = min(len(observations), slice_size)
    feed = observations[:slice_size]
    config = SessionConfig(
        preset="paper_shaped",
        execution=ExecutionPolicy(backend="sharded", shards=4),
    )

    def drain():
        backend = ShardedBackend(
            BackendContext(
                config=config,
                ip2as=bench_world.ip2as,
                country_by_asn=bench_world.country_by_asn,
            )
        )
        for observation in feed:
            backend.ingest_observation(observation)
        return backend.drain()

    result = benchmark.pedantic(drain, rounds=3, iterations=1)
    inline = StreamingLocalizer(
        bench_world.ip2as, bench_world.country_by_asn
    )
    for observation in feed:
        inline.ingest_observation(observation)
    assert result.to_dict() == inline.drain().to_dict()
    mean_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["observations"] = slice_size
    benchmark.extra_info["shards"] = 4
    benchmark.extra_info["events_per_sec"] = round(
        slice_size / mean_seconds, 1
    )


@pytest.mark.parametrize(
    "migration", ["grow_2_to_3", "pin_8_buckets"]
)
def test_micro_rebalance_commit(benchmark, bench_world, bench_dataset,
                                migration):
    """Live-rebalance latency: time-to-commit vs moved-bucket count.

    Each round loads a 2-shard backend with 2000 observations, then
    times one full migration — quiesce, slice extraction, transfer,
    epoch commit — for two movement profiles: a ring-driven grow
    (2 → 3 workers, ~1/3 of the buckets move) and a surgical 8-bucket
    override pin.  ``extra_info`` records the moved-bucket count next
    to the commit wall time, so the trajectory shows migration cost
    scaling with movement, not with fleet size.
    """
    observations, _ = build_observations(bench_dataset, bench_world.ip2as)
    feed = observations[:2000]
    config = SessionConfig(
        preset="paper_shaped",
        execution=ExecutionPolicy(backend="sharded", shards=2),
    )
    holder = {"backends": [], "report": None}

    def setup():
        backend = ShardedBackend(
            BackendContext(
                config=config,
                ip2as=bench_world.ip2as,
                country_by_asn=bench_world.country_by_asn,
            )
        )
        for observation in feed:
            backend.ingest_observation(observation)
        placement = backend.placement
        if migration == "grow_2_to_3":
            new_map = placement.with_shards(3)
        else:
            pairs = sorted(backend._known_pairs())[:8]
            new_map = placement.with_overrides(
                {
                    pair: (placement.shard_for(*pair) + 1) % 2
                    for pair in pairs
                }
            )
        holder["backends"].append(backend)
        return (backend, new_map), {}

    def commit(backend, new_map):
        holder["report"] = backend.rebalance(new_map)
        return holder["report"]

    benchmark.pedantic(commit, setup=setup, rounds=3, iterations=1)
    for backend in holder["backends"]:
        backend.close()
    report = holder["report"]
    assert report["moved_buckets"] > 0
    benchmark.extra_info["observations"] = len(feed)
    benchmark.extra_info["moved_buckets"] = report["moved_buckets"]
    benchmark.extra_info["commit_ms"] = round(
        benchmark.stats.stats.mean * 1e3, 2
    )


def test_micro_metrics_overhead(benchmark, bench_world, bench_dataset):
    """Cost of a live metrics registry on the hot ingest path.

    Drains the same 2000-observation slice twice per round — registry
    attached (engine collector + per-event counters + SAT solve deltas)
    vs. bare — and reports the relative ingest overhead.  The registry's
    contract is "zero cost when absent, cheap when present": collectors
    defer all stats export to scrape time, so the only per-observation
    cost is the ``_emit`` counter bump.  The tripwire bound is generous
    (15%) to survive noisy CI machines; the recorded ``overhead_pct``
    is the budgeted number (<5% on an idle machine).
    """
    import time as time_module

    from repro.obs.metrics import MetricsRegistry

    observations, _ = build_observations(bench_dataset, bench_world.ip2as)
    feed = observations[: min(len(observations), 2000)]

    def drain(registry):
        engine = StreamingLocalizer(
            bench_world.ip2as,
            bench_world.country_by_asn,
            config=PipelineConfig(),
            metrics=registry,
        )
        engine.subscribe(lambda event: None)
        for observation in feed:
            engine.ingest_observation(observation)
        return engine.drain()

    drain(None)                         # warm caches before timing
    baseline = min(
        (lambda t0: (drain(None), time_module.perf_counter() - t0)[1])(
            time_module.perf_counter()
        )
        for _ in range(3)
    )
    instrumented = benchmark.pedantic(
        lambda: drain(MetricsRegistry()), rounds=3, iterations=1
    )
    bare = drain(None)
    assert instrumented.to_dict() == bare.to_dict()
    mean_seconds = benchmark.stats.stats.mean
    overhead = mean_seconds / baseline - 1.0
    assert overhead < 0.15, f"metrics overhead {overhead:.1%}"
    benchmark.extra_info["observations"] = len(feed)
    benchmark.extra_info["baseline_ms"] = round(baseline * 1000, 2)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)


def test_micro_obs_overhead(benchmark, bench_world, bench_dataset):
    """Cost of structured logging + span recording on the hot ingest path.

    Same protocol as ``test_micro_metrics_overhead``: the 2000-observation
    slice drains bare vs. with the full observability plane on — ``repro``
    logging configured at info into an in-memory sink and a
    :class:`SpanRecorder` attached to the engine.  Disabled is the
    default state (library ``NullHandler``, no recorder): its only cost
    is a level check and a ``None`` branch per event, i.e. noise.
    Enabled, the per-observation cost is bounded by the logging level
    gate (window closes log at debug, below the configured level) and
    one span per window close — the budget is <5% on an idle machine,
    with the same generous 15% tripwire as the metrics bench for noisy
    CI boxes.
    """
    import io
    import logging
    import time as time_module

    from repro.obs import log as obslog
    from repro.obs.spans import SpanRecorder

    observations, _ = build_observations(bench_dataset, bench_world.ip2as)
    feed = observations[: min(len(observations), 2000)]
    log = obslog.get_logger("bench.obs")

    def drain(spans):
        engine = StreamingLocalizer(
            bench_world.ip2as,
            bench_world.country_by_asn,
            config=PipelineConfig(),
        )
        if spans is not None:
            engine.attach_spans(spans)
        engine.subscribe(lambda event: None)
        for observation in feed:
            engine.ingest_observation(observation)
        result = engine.drain()
        log.info(
            "bench.drain", extra=obslog.fields(observations=len(feed))
        )
        return result

    drain(None)                         # warm caches before timing
    baseline = min(
        (lambda t0: (drain(None), time_module.perf_counter() - t0)[1])(
            time_module.perf_counter()
        )
        for _ in range(3)
    )
    recorders = []

    def instrumented_drain():
        recorders.append(SpanRecorder())
        return drain(recorders[-1])

    root = obslog.configure(level="info", json_lines=True, stream=io.StringIO())
    try:
        instrumented = benchmark.pedantic(
            instrumented_drain, rounds=3, iterations=1
        )
    finally:
        for handler in list(root.handlers):
            if getattr(handler, "_repro_configured", False):
                root.removeHandler(handler)
        root.setLevel(logging.NOTSET)
    bare = drain(None)
    assert instrumented.to_dict() == bare.to_dict()
    assert recorders[-1].snapshot(), "no spans recorded while enabled"
    mean_seconds = benchmark.stats.stats.mean
    overhead = mean_seconds / baseline - 1.0
    assert overhead < 0.15, f"logging+span overhead {overhead:.1%}"
    benchmark.extra_info["observations"] = len(feed)
    benchmark.extra_info["baseline_ms"] = round(baseline * 1000, 2)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    benchmark.extra_info["spans"] = len(recorders[-1].snapshot())


def test_micro_checkpoint_roundtrip(benchmark, bench_world, bench_dataset):
    """Checkpoint/restore round-trip cost on a loaded engine.

    Serializes a mid-campaign engine (thousands of open/closed windows)
    through the full persistence path — state export, JSON encode/decode,
    and ledger/closure reconstruction by replay — the per-checkpoint tax
    a restartable consumer pays.  ``extra_info`` records the payload
    size, the other half of the checkpoint budget.
    """
    observations, _ = build_observations(bench_dataset, bench_world.ip2as)
    feed = observations[: min(len(observations), 4000)]
    engine = StreamingLocalizer(
        bench_world.ip2as, bench_world.country_by_asn
    )
    for observation in feed:
        engine.ingest_observation(observation)

    def roundtrip():
        payload = json.dumps(engine_state(engine))
        return restore_engine(
            json.loads(payload),
            bench_world.ip2as,
            bench_world.country_by_asn,
        )

    restored = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert restored.open_problems == engine.open_problems
    assert restored.closed_problems == engine.closed_problems
    benchmark.extra_info["observations"] = len(feed)
    benchmark.extra_info["state_bytes"] = len(
        json.dumps(engine_state(engine))
    )


# -- the serve daemon ---------------------------------------------------------
#
# The daemon's perf contract is "thin": its fixed per-frame overhead is
# the asyncio hop plus one executor hand-off, and concurrent campaigns
# scale by tenant because each one owns its queue and applier.  Both
# benches run against a real daemon on a background thread over
# localhost TCP — the deployment shape, not a mock.

SERVE_TENANTS = 4


@pytest.fixture(scope="module")
def serve_daemon():
    from repro.serve import AdmissionPolicy, start_in_thread

    handle = start_in_thread(policy=AdmissionPolicy(max_tenants=64))
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def serve_feed():
    """A tiny campaign pre-converted to observations (client-side shape)."""
    from repro.scenario.presets import tiny
    from repro.scenario.world import build_world

    world = build_world(tiny(seed=7))
    observations, _ = build_observations(
        world.run_campaign(), world.ip2as
    )
    return world, observations


def test_micro_serve_roundtrip(benchmark, serve_daemon):
    """One sequenced frame's round trip through the daemon.

    An ``advance`` frame on an empty tenant pays the serve path's entire
    fixed cost — frame encode/decode, the asyncio reader, the tenant
    queue, the executor hand-off, the watermark bump, and the ack back —
    with no solver work in the loop, so the number is the daemon's
    per-frame overhead floor.
    """
    from repro.serve import ServeClient

    client = ServeClient(
        serve_daemon.address,
        "bench-rtt",
        config=SessionConfig(preset="tiny", seed=7),
    )
    client.attach()
    timestamps = itertools.count(1000)

    def round_trip():
        client.advance(next(timestamps))
        client.wait_for_acks()

    benchmark(round_trip)
    client.close()
    mean_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["round_trips_per_sec"] = round(
        1.0 / mean_seconds, 1
    )


def test_micro_serve_concurrent_throughput(
    benchmark, serve_daemon, serve_feed
):
    """N concurrent campaigns streaming through one daemon.

    Each round attaches ``SERVE_TENANTS`` fresh tenants (world builds
    untimed, in setup), then every tenant's client ingests the same tiny
    observation feed from its own thread and drains — the multi-tenant
    hot path: interleaved frames on one event loop, per-tenant queues
    and appliers, chunked acks, concurrent engine folds.  The one-time
    equality check against the inline engine guards tenant isolation.
    """
    from repro.serve import ServeClient

    world, observations = serve_feed
    config = SessionConfig(preset="tiny", seed=7)
    rounds = itertools.count()
    holder = {}
    results = []

    def setup():
        clients = []
        tag = next(rounds)
        for index in range(SERVE_TENANTS):
            client = ServeClient(
                serve_daemon.address, f"bench-t{tag}-{index}", config=config
            )
            client.attach()
            clients.append(client)
        holder["clients"] = clients
        return (), {}

    def drain_all():
        failures = []

        def drive(client):
            try:
                for observation in observations:
                    client.ingest_observation(observation)
                results.append(client.drain())
            except Exception as exc:   # surfaces after the join
                failures.append(exc)

        threads = [
            threading.Thread(target=drive, args=(client,))
            for client in holder["clients"]
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        for client in holder["clients"]:
            client.close()

    benchmark.pedantic(drain_all, setup=setup, rounds=3, iterations=1)
    inline = StreamingLocalizer(
        world.ip2as, world.country_by_asn, config=PipelineConfig()
    )
    for observation in observations:
        inline.ingest_observation(observation)
    expected = inline.drain().to_dict()
    assert all(
        result.to_dict() == expected
        for result in results[-SERVE_TENANTS:]
    )
    mean_seconds = benchmark.stats.stats.mean
    total = len(observations) * SERVE_TENANTS
    benchmark.extra_info["tenants"] = SERVE_TENANTS
    benchmark.extra_info["observations"] = total
    benchmark.extra_info["events_per_sec"] = round(total / mean_seconds, 1)
